#include "host/kernel.hh"

#include <algorithm>

#include "check/checker.hh"
#include "sim/simulation.hh"

namespace cg::host {

using sim::Process;

Thread::Thread(Kernel& k, SchedClass cls, CpuMask affinity)
    : kernel_(k), cls_(cls), affinity_(affinity)
{}

const std::string&
Thread::name() const
{
    return proc_->name();
}

bool
Thread::done() const
{
    return proc_->done();
}

void
Thread::setAffinity(CpuMask m)
{
    CG_ASSERT(!m.empty(), "empty affinity for thread '%s'",
              name().c_str());
    affinity_ = m;
}

Kernel::Kernel(hw::Machine& machine)
    : machine_(machine),
      cores_(static_cast<size_t>(machine.numCores()))
{
    for (CoreId c = 0; c < machine_.numCores(); ++c) {
        machine_.gic().setSink(
            c, [this, c](hw::IntId id) { onInterrupt(c, id); });
    }
}

Kernel::~Kernel()
{
    // Threads reference this dispatcher; kill any that are still alive
    // so the Simulation's later cleanup never touches a freed Kernel.
    for (auto& t : threads_) {
        if (t->proc_)
            t->proc_->kill();
    }
}

sim::Simulation&
Kernel::sim()
{
    return machine_.sim();
}

void
Kernel::registerStats(sim::StatRegistry& reg)
{
    statGroup_.attach(reg, "host");
    statGroup_.add("contextSwitches", stats_.contextSwitches);
    statGroup_.add("migrations", stats_.migrations);
    statGroup_.add("ipis", stats_.ipis);
    statGroup_.add("irqs", stats_.irqs);
    statGroup_.add("hotplugOps", stats_.hotplugOps);
    statGroup_.add("hotplugFailures", stats_.hotplugFailures);
}

// ---------------------------------------------------------------- threads

Thread&
Kernel::createThread(std::string name, Proc<void> body, SchedClass cls,
                     CpuMask affinity)
{
    affinity = affinity & CpuMask::firstN(machine_.numCores());
    if (affinity.empty())
        sim::fatal("thread '%s' has empty affinity", name.c_str());
    auto owned =
        std::unique_ptr<Thread>(new Thread(*this, cls, affinity));
    Thread& t = *owned;
    threads_.push_back(std::move(owned));
    // Attach the cookie before the first wake so wake() can find us.
    Process& p =
        sim().spawnOn(std::move(name), *this, std::move(body), false);
    p.schedCookie = &t;
    t.proc_ = &p;
    t.needsResume_ = true;
    enqueue(t);
    return t;
}

Thread&
Kernel::threadOf(Process& p)
{
    CG_ASSERT(p.schedCookie, "process '%s' is not a kernel thread",
              p.name().c_str());
    return *static_cast<Thread*>(p.schedCookie);
}

Thread*
Kernel::currentOn(CoreId c)
{
    return cores_.at(static_cast<size_t>(c)).current;
}

std::size_t
Kernel::queuedOn(CoreId c) const
{
    const CoreSched& cs = cores_.at(static_cast<size_t>(c));
    return cs.fifoQueue.size() + cs.fairQueue.size();
}

// ------------------------------------------------------------ dispatcher

void
Kernel::compute(Process& p, Tick amount)
{
    Thread& t = threadOf(p);
    t.wantsCpu_ = true;
    t.remaining_ = amount;
    if (t.onCpu_) {
        // The thread is current and just asked for more CPU: keep
        // running with no context-switch cost.
        scheduleRun(t.lastCore_, 0);
    } else {
        enqueue(t);
    }
}

void
Kernel::blocked(Process& p)
{
    Thread& t = threadOf(p);
    if (t.onCpu_)
        stopRunning(t.lastCore_, false);
    // A queued-but-not-running thread that blocks (can't happen today:
    // only the running thread executes code) would just stay dequeued.
}

void
Kernel::wake(Process& p)
{
    Thread& t = threadOf(p);
    if (t.onCpu_) {
        // Our own run event completed this thread's compute; resume the
        // coroutine in place (still current on its core).
        p.resumeNow();
        return;
    }
    if (t.queued_)
        return; // redundant wake
    t.needsResume_ = true;
    enqueue(t);
}

void
Kernel::detach(Process& p)
{
    Thread& t = threadOf(p);
    if (t.onCpu_)
        stopRunning(t.lastCore_, false);
    removeFromQueues(t);
    if (t.guestRun_) {
        t.guestRun_->setExitReadyHook(nullptr);
        t.guestRun_->setAbandonHook(nullptr);
        t.guestRun_ = nullptr;
    }
    t.wantsCpu_ = false;
    t.needsResume_ = false;
}

void
Kernel::abandonGuestRun(Thread& t)
{
    // The guest executor died while this thread was mid-runGuest.
    // Drop the reference; the thread stays suspended until killed.
    t.guestRun_ = nullptr;
    t.guestEndPending_ = false;
    t.wantsCpu_ = false;
    t.remaining_ = 0;
}

void
Kernel::yieldCurrent(Process& p)
{
    Thread& t = threadOf(p);
    CG_ASSERT(t.onCpu_, "yield from a thread that is not running");
    const CoreId c = t.lastCore_;
    t.needsResume_ = true;
    stopRunning(c, true);
    scheduleDispatch(c);
}

Kernel::YieldAwaiter
Kernel::yield()
{
    return YieldAwaiter{*this};
}

// ------------------------------------------------------------- guest mode

Kernel::GuestRunAwaiter
Kernel::runGuest(GuestExecutor& g)
{
    return GuestRunAwaiter{*this, g};
}

void
Kernel::beginGuestRun(Process& p, GuestExecutor& g)
{
    Thread& t = threadOf(p);
    CG_ASSERT(t.onCpu_, "runGuest from a thread that is not running");
    CG_ASSERT(!t.guestRun_, "nested runGuest on thread '%s'",
              t.name().c_str());
    t.guestRun_ = &g;
    // The guest run looks like a (very long) compute to the scheduler,
    // so preemption and timeslicing apply normally.
    t.wantsCpu_ = true;
    t.remaining_ = 3600 * sim::sec;
    g.setExitReadyHook([this, &t] { onGuestExitReady(t); });
    g.setAbandonHook([this, &t] { abandonGuestRun(t); });
    machine_.core(t.lastCore_).setOccupant(g.executorDomain());
    Tick enter_cost = 0;
    if (g.confidential()) {
        enter_cost =
            machine_.switchWorld(t.lastCore_, hw::World::Realm);
    }
    scheduleRun(t.lastCore_, enter_cost);
    g.enterOn(t.lastCore_);
    if (g.exitReady())
        onGuestExitReady(t);
}

void
Kernel::onGuestExitReady(Thread& t)
{
    if (!t.guestRun_ || t.guestEndPending_)
        return;
    t.guestEndPending_ = true;
    // Complete from event context, never from inside the notifier.
    sim().queue().scheduleIn(0, [this, &t] { finishGuestRun(t); });
}

void
Kernel::finishGuestRun(Thread& t)
{
    t.guestEndPending_ = false;
    if (!t.guestRun_)
        return;
    GuestExecutor& g = *t.guestRun_;
    g.setExitReadyHook(nullptr);
    g.setAbandonHook(nullptr);
    t.guestRun_ = nullptr;
    t.wantsCpu_ = false;
    t.remaining_ = 0;
    if (t.onCpu_) {
        const CoreId c = t.lastCore_;
        CoreSched& cs = cores_[static_cast<size_t>(c)];
        if (cs.runEvent != sim::invalidEventId) {
            sim().queue().cancel(cs.runEvent);
            cs.runEvent = sim::invalidEventId;
        }
        g.pause();
        if (g.confidential()) {
            // Exit back to normal world: the flush cost delays this
            // thread's subsequent exit handling.
            cs.pendingSwitchCost +=
                machine_.switchWorld(c, hw::World::Normal);
        }
        machine_.core(c).setOccupant(sim::hostDomain);
        Process& p = t.process();
        CG_ASSERT(p.state() == Process::State::Blocked,
                  "guest-mode thread '%s' in unexpected state",
                  t.name().c_str());
        p.wake(); // routes via Kernel::wake -> resumeNow (on CPU)
    } else {
        // The thread was preempted; the guest is already paused. Just
        // arrange for the coroutine to resume at its next dispatch.
        t.needsResume_ = true;
        if (!t.queued_)
            enqueue(t);
    }
}

// ------------------------------------------------------------ scheduling

CoreId
Kernel::pickCore(const Thread& t) const
{
    CoreId best = sim::invalidCore;
    std::size_t best_load = ~0ull;
    // Prefer the cache-warm last core when it is eligible and no more
    // loaded than the alternatives.
    for (CoreId c = 0; c < machine_.numCores(); ++c) {
        const CoreSched& cs = cores_[static_cast<size_t>(c)];
        if (!cs.online || !t.affinity().test(c))
            continue;
        std::size_t load = cs.fifoQueue.size() + cs.fairQueue.size() +
                           (cs.current ? 1 : 0);
        if (c == t.lastCore() && load <= best_load) {
            best = c;
            best_load = load;
            continue;
        }
        if (load < best_load) {
            best = c;
            best_load = load;
        }
    }
    return best;
}

void
Kernel::enqueue(Thread& t)
{
    CG_ASSERT(!t.queued_ && !t.onCpu_, "enqueue of running thread '%s'",
              t.name().c_str());
    CoreId c = pickCore(t);
    if (c == sim::invalidCore) {
        // All affine cores are offline; Linux breaks affinity rather
        // than lose the thread.
        sim::warn("thread '%s': affinity broken, no online core",
                  t.name().c_str());
        for (CoreId i = 0; i < machine_.numCores(); ++i) {
            if (cores_[static_cast<size_t>(i)].online) {
                c = i;
                break;
            }
        }
        CG_ASSERT(c != sim::invalidCore, "no online cores at all");
    }
    if (t.lastCore_ != sim::invalidCore && t.lastCore_ != c)
        stats_.migrations.inc();
    CoreSched& cs = cores_[static_cast<size_t>(c)];
    if (t.schedClass() == SchedClass::Fifo)
        cs.fifoQueue.push_back(&t);
    else
        cs.fairQueue.push_back(&t);
    t.queued_ = true;
    t.lastCore_ = c;
    maybePreempt(c);
}

void
Kernel::requeueTail(Thread& t)
{
    CoreSched& cs = cores_[static_cast<size_t>(t.lastCore_)];
    if (cs.online) {
        if (t.schedClass() == SchedClass::Fifo)
            cs.fifoQueue.push_back(&t);
        else
            cs.fairQueue.push_back(&t);
        t.queued_ = true;
    } else {
        enqueue(t);
    }
}

void
Kernel::maybePreempt(CoreId c)
{
    CoreSched& cs = cores_[static_cast<size_t>(c)];
    if (!cs.online)
        return;
    if (!cs.current) {
        scheduleDispatch(c);
        return;
    }
    // A FIFO-class arrival preempts a fair-class current immediately.
    if (!cs.fifoQueue.empty() &&
        cs.current->schedClass() == SchedClass::Fair) {
        stopRunning(c, true);
        scheduleDispatch(c);
        return;
    }
    // Fair-vs-fair contention: ensure a timeslice is armed.
    if (cs.current->schedClass() == SchedClass::Fair &&
        !cs.fairQueue.empty() &&
        cs.timesliceEvent == sim::invalidEventId) {
        cs.timesliceEvent = sim().queue().scheduleIn(
            quantum, [this, c] { onTimeslice(c); });
    }
}

void
Kernel::scheduleDispatch(CoreId c)
{
    CoreSched& cs = cores_[static_cast<size_t>(c)];
    if (cs.dispatchPending)
        return;
    cs.dispatchPending = true;
    sim().queue().scheduleIn(0, [this, c] {
        cores_[static_cast<size_t>(c)].dispatchPending = false;
        dispatch(c);
    });
}

void
Kernel::dispatch(CoreId c)
{
    CoreSched& cs = cores_[static_cast<size_t>(c)];
    if (!cs.online || cs.current)
        return;
    Thread* next = nullptr;
    if (!cs.fifoQueue.empty()) {
        next = cs.fifoQueue.front();
        cs.fifoQueue.pop_front();
    } else if (!cs.fairQueue.empty()) {
        next = cs.fairQueue.front();
        cs.fairQueue.pop_front();
    }
    if (!next)
        return; // idle
    next->queued_ = false;
    startRunning(c, *next);
}

void
Kernel::startRunning(CoreId c, Thread& t)
{
    CoreSched& cs = cores_[static_cast<size_t>(c)];
    CG_ASSERT(!cs.current, "startRunning on busy core %d", c);
    cs.current = &t;
    t.onCpu_ = true;
    t.lastCore_ = c;

    hw::Core& core = machine_.core(c);

    Tick overhead = 0;
    if (cs.lastRan != &t) {
        stats_.contextSwitches.inc();
        overhead += machine_.cost(machine_.costs().hostContextSwitch);
        overhead += core.uarch().warmupCost(sim::hostDomain, t.footprint);
    }
    cs.lastRan = &t;

    if (t.guestRun_) {
        // Rescheduled mid-KVM_RUN: resume guest execution here. The
        // guest pays its own warm-up internally; confidential guests
        // pay the world switch into realm mode.
        if (t.guestRun_->confidential())
            overhead += machine_.switchWorld(c, hw::World::Realm);
        core.setOccupant(t.guestRun_->executorDomain());
        scheduleRun(c, overhead);
        t.guestRun_->enterOn(c);
        if (t.guestRun_->exitReady())
            onGuestExitReady(t);
        return;
    }

    core.setOccupant(sim::hostDomain);
    core.uarch().run(sim::hostDomain, t.footprint);
    scheduleRun(c, overhead);
}

void
Kernel::scheduleRun(CoreId c, Tick overhead)
{
    CoreSched& cs = cores_[static_cast<size_t>(c)];
    overhead += cs.pendingSwitchCost;
    cs.pendingSwitchCost = 0;
    Thread& t = *cs.current;
    if (cs.runEvent != sim::invalidEventId) {
        sim().queue().cancel(cs.runEvent);
        cs.runEvent = sim::invalidEventId;
    }
    cs.runChargeStart = sim().now() + overhead;
    const Tick work = t.wantsCpu_ ? t.remaining_ : 0;
    cs.runEvent = sim().queue().scheduleIn(
        overhead + work, [this, c] { onRunEvent(c); });
    // Arm a timeslice for fair-vs-fair contention.
    if (t.schedClass() == SchedClass::Fair && !cs.fairQueue.empty() &&
        cs.timesliceEvent == sim::invalidEventId &&
        overhead + work > quantum) {
        cs.timesliceEvent = sim().queue().scheduleIn(
            quantum, [this, c] { onTimeslice(c); });
    }
}

void
Kernel::stopRunning(CoreId c, bool requeue)
{
    CoreSched& cs = cores_[static_cast<size_t>(c)];
    CG_ASSERT(cs.current, "stopRunning on idle core %d", c);
    Thread& t = *cs.current;
    if (t.guestRun_) {
        // Preempting a KVM_RUN: the guest stops making progress. For a
        // confidential guest this is a realm exit through the monitor,
        // whose flush cost lands on whoever runs next on this core.
        t.guestRun_->pause();
        if (t.guestRun_->confidential()) {
            cs.pendingSwitchCost +=
                machine_.switchWorld(c, hw::World::Normal);
        }
        machine_.core(c).setOccupant(sim::hostDomain);
    }
    // Account partially completed compute.
    if (t.wantsCpu_) {
        const Tick now = sim().now();
        const Tick consumed =
            now > cs.runChargeStart ? now - cs.runChargeStart : 0;
        t.remaining_ = t.remaining_ > consumed ? t.remaining_ - consumed
                                               : 0;
    }
    cancelCoreEvents(cs);
    cs.current = nullptr;
    t.onCpu_ = false;
    if (requeue)
        requeueTail(t);
}

void
Kernel::cancelCoreEvents(CoreSched& cs)
{
    if (cs.runEvent != sim::invalidEventId) {
        sim().queue().cancel(cs.runEvent);
        cs.runEvent = sim::invalidEventId;
    }
    if (cs.timesliceEvent != sim::invalidEventId) {
        sim().queue().cancel(cs.timesliceEvent);
        cs.timesliceEvent = sim::invalidEventId;
    }
    cs.pendingSteal = 0;
}

void
Kernel::onRunEvent(CoreId c)
{
    CoreSched& cs = cores_[static_cast<size_t>(c)];
    cs.runEvent = sim::invalidEventId;
    Thread* t = cs.current;
    CG_ASSERT(t, "run event on idle core %d", c);
    // IRQ handlers stole CPU from this thread: extend its run.
    if (cs.pendingSteal > 0) {
        const Tick steal = cs.pendingSteal;
        cs.pendingSteal = 0;
        cs.runEvent =
            sim().queue().scheduleIn(steal, [this, c] { onRunEvent(c); });
        return;
    }
    if (cs.timesliceEvent != sim::invalidEventId) {
        sim().queue().cancel(cs.timesliceEvent);
        cs.timesliceEvent = sim::invalidEventId;
    }
    t->wantsCpu_ = false;
    t->remaining_ = 0;
    t->needsResume_ = false;
    Process& p = t->process();
    // Resume the coroutine: it may ask for more CPU (stays current),
    // block (core goes idle / redispatches), or finish (detach).
    if (p.state() == Process::State::Blocked)
        p.wake(); // routes back to Kernel::wake -> resumeNow
    else if (p.state() == Process::State::Ready)
        p.resumeNow();
    else
        sim::panic("run event for thread '%s' in unexpected state",
                   t->name().c_str());
    // If the thread gave up the CPU during the resume, find new work.
    if (!cs.current)
        scheduleDispatch(c);
}

void
Kernel::onTimeslice(CoreId c)
{
    CoreSched& cs = cores_[static_cast<size_t>(c)];
    cs.timesliceEvent = sim::invalidEventId;
    if (!cs.current || cs.fairQueue.empty())
        return;
    stopRunning(c, true);
    dispatch(c);
}

void
Kernel::removeFromQueues(Thread& t)
{
    if (!t.queued_)
        return;
    for (auto& cs : cores_) {
        auto drop = [&t](std::deque<Thread*>& q) {
            q.erase(std::remove(q.begin(), q.end(), &t), q.end());
        };
        drop(cs.fifoQueue);
        drop(cs.fairQueue);
    }
    t.queued_ = false;
}

// --------------------------------------------------------------- hotplug

bool
Kernel::isOnline(CoreId c) const
{
    return cores_.at(static_cast<size_t>(c)).online;
}

int
Kernel::onlineCount() const
{
    int n = 0;
    for (const auto& cs : cores_)
        n += cs.online ? 1 : 0;
    return n;
}

void
Kernel::migrateThreadsAway(CoreId c)
{
    CoreSched& cs = cores_[static_cast<size_t>(c)];
    if (cs.current) {
        Thread& t = *cs.current;
        t.needsResume_ = t.needsResume_ || !t.wantsCpu_;
        stopRunning(c, false);
        enqueue(t); // offline core is excluded by pickCore
    }
    std::vector<Thread*> displaced;
    for (Thread* t : cs.fifoQueue)
        displaced.push_back(t);
    for (Thread* t : cs.fairQueue)
        displaced.push_back(t);
    cs.fifoQueue.clear();
    cs.fairQueue.clear();
    for (Thread* t : displaced) {
        t->queued_ = false;
        enqueue(*t);
    }
}

Proc<bool>
Kernel::offlineCore(CoreId c)
{
    // Validate eagerly: coroutine bodies only run when awaited, but
    // configuration errors should throw at the call site.
    if (!isOnline(c))
        sim::fatal("core %d is already offline", c);
    if (onlineCount() == 1)
        sim::fatal("cannot offline the last online core");
    {
        CoreSched& cs = cores_[static_cast<size_t>(c)];
        if (cs.current &&
            cs.current->process().state() == Process::State::Running) {
            // The currently executing coroutine on this core is the
            // caller itself.
            sim::fatal("a thread cannot offline the core it is running "
                       "on");
        }
    }
    return offlineCoreImpl(c);
}

Proc<bool>
Kernel::offlineCoreImpl(CoreId c)
{
    sim::FaultPlan& faults = sim().faults();
    if (faults.armed() &&
        faults.query(sim::FaultSite::HotplugOfflineFail)) {
        // The offline attempt fails before any state is torn down
        // (e.g. a CPUHP callback vetoed it): the core stays online
        // with its threads and IRQ routes untouched; only the failed
        // attempt's latency is paid.
        stats_.hotplugFailures.inc();
        faults.noteDetected(sim::FaultSite::HotplugOfflineFail);
        sim().tracer().instant("hotplug-offline-fail",
                               sim::Tracer::coresPid, c);
        co_await sim::Delay{
            machine_.cost(machine_.costs().hotplugOffline)};
        co_return false;
    }
    CoreSched& cs = cores_[static_cast<size_t>(c)];
    cs.online = false;
    stats_.hotplugOps.inc();
    if (auto* chk = machine_.checker())
        chk->onHotplug(c, /*offline=*/true);
    sim().tracer().instant("hotplug-offline", sim::Tracer::coresPid, c);
    migrateThreadsAway(c);
    // Retarget device interrupts at the first remaining online core.
    CoreId fallback = 0;
    for (CoreId i = 0; i < machine_.numCores(); ++i) {
        if (cores_[static_cast<size_t>(i)].online) {
            fallback = i;
            break;
        }
    }
    machine_.gic().migrateSpisAway(c, fallback);
    // The kernel stops handling this core's interrupts; they pend until
    // the next owner (the security monitor) installs its sink.
    machine_.gic().clearSink(c);
    co_await sim::Delay{
        machine_.cost(machine_.costs().hotplugOffline)};
    // Paper modification (section 4.2): skip the frequency-scaling
    // teardown and do not halt; the core stays hot for handover.
    co_return true;
}

Proc<bool>
Kernel::onlineCore(CoreId c)
{
    if (isOnline(c))
        sim::fatal("core %d is already online", c);
    return onlineCoreImpl(c);
}

Proc<bool>
Kernel::onlineCoreImpl(CoreId c)
{
    sim::FaultPlan& faults = sim().faults();
    if (faults.armed() &&
        faults.query(sim::FaultSite::HotplugOnlineFail)) {
        // The bring-up fails after paying its latency; the core is
        // left offline and the caller decides whether to retry.
        stats_.hotplugFailures.inc();
        faults.noteDetected(sim::FaultSite::HotplugOnlineFail);
        sim().tracer().instant("hotplug-online-fail",
                               sim::Tracer::coresPid, c);
        co_await sim::Delay{
            machine_.cost(machine_.costs().hotplugOnline)};
        co_return false;
    }
    stats_.hotplugOps.inc();
    // Reclaim audit: the host is about to own this core again; any
    // confidential residue still here is a dirty handback.
    if (auto* chk = machine_.checker())
        chk->onHotplug(c, /*offline=*/false);
    sim().tracer().instant("hotplug-online", sim::Tracer::coresPid, c);
    co_await sim::Delay{machine_.cost(machine_.costs().hotplugOnline)};
    CoreSched& cs = cores_[static_cast<size_t>(c)];
    cs.online = true;
    cs.lastRan = nullptr;
    machine_.gic().setSink(
        c, [this, c](hw::IntId id) { onInterrupt(c, id); });
    machine_.core(c).setWorld(hw::World::Normal);
    machine_.core(c).setOccupant(sim::hostDomain);
    scheduleDispatch(c);
    co_return true;
}

// ------------------------------------------------------------ interrupts

int
Kernel::allocateIpi()
{
    if (nextIpi_ >= 16)
        sim::fatal("out of SGI numbers (Linux reserves 0-7)");
    return nextIpi_++;
}

void
Kernel::sendIpi(CoreId target, int ipi)
{
    stats_.ipis.inc();
    sim().tracer().instant("ipi-send", sim::Tracer::coresPid, target,
                           "ipi", static_cast<std::uint64_t>(ipi));
    machine_.gic().sendSgi(target, ipi);
}

void
Kernel::setIpiHandler(int ipi, std::function<void(CoreId)> fn)
{
    ipiHandlers_[ipi] = std::move(fn);
}

void
Kernel::clearIpiHandler(int ipi)
{
    ipiHandlers_.erase(ipi);
}

void
Kernel::setIrqHandler(hw::IntId spi, std::function<void(CoreId)> fn)
{
    irqHandlers_[spi] = std::move(fn);
}

void
Kernel::routeIrq(hw::IntId spi, CoreId target)
{
    machine_.gic().routeSpi(spi, target);
}

void
Kernel::onInterrupt(CoreId c, hw::IntId id)
{
    stats_.irqs.inc();
    // Charge the interrupted thread for the handler's CPU time.
    CoreSched& cs = cores_[static_cast<size_t>(c)];
    if (cs.current && cs.runEvent != sim::invalidEventId)
        cs.pendingSteal += machine_.cost(machine_.costs().irqEntry);
    if (hw::isSgi(id)) {
        auto it = ipiHandlers_.find(id);
        if (it != ipiHandlers_.end())
            it->second(c);
        return;
    }
    auto it = irqHandlers_.find(id);
    if (it != irqHandlers_.end())
        it->second(c);
}

} // namespace cg::host
