/**
 * @file
 * The host operating system model: a Linux-like kernel with
 * per-core runqueues (two scheduling classes), CPU hotplug (including
 * the paper's modification that hands offline cores to the security
 * monitor instead of halting them), IRQ routing, and IPIs.
 *
 * Threads are coroutine processes whose Dispatcher is the Kernel:
 * `co_await Compute{t}` consumes CPU on whichever core the scheduler
 * places the thread, with preemption; blocking awaits release the core.
 */

#ifndef CG_HOST_KERNEL_HH
#define CG_HOST_KERNEL_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "host/cpumask.hh"
#include "hw/machine.hh"
#include "sim/proc.hh"
#include "sim/stat_registry.hh"
#include "sim/stats.hh"

namespace cg::host {

using sim::CoreId;
using sim::Proc;
using sim::Tick;

class Kernel;

/** Scheduling class: Fair (CFS-like) or Fifo (SCHED_FIFO, always wins). */
enum class SchedClass { Fair, Fifo };

/**
 * Something a host thread can execute guest code through (KVM_RUN).
 *
 * While a thread is in guest mode (Kernel::runGuest), the kernel calls
 * enterOn()/pause() as the thread goes on and off CPU, so guest
 * progress is gated on host scheduling: a preempted vCPU thread means
 * a paused guest — the shared-core behaviour core gapping removes.
 * Implemented by guest::VCpu.
 */
class GuestExecutor
{
  public:
    virtual ~GuestExecutor() = default;

    /** Resume guest execution on @p core. */
    virtual void enterOn(sim::CoreId core) = 0;

    /** Suspend guest execution (preemption or completion). */
    virtual void pause() = 0;

    /** An exit-worthy event is pending. */
    virtual bool exitReady() const = 0;

    /** Called (possibly redundantly) whenever exitReady becomes true. */
    virtual void setExitReadyHook(std::function<void()> fn) = 0;

    /**
     * Called from the executor's destructor if it dies while a thread
     * is mid-runGuest, so the kernel can drop its pointer. (Orderly
     * shutdown should stop runner threads before destroying guests;
     * this hook only prevents dangling references at teardown.)
     */
    virtual void setAbandonHook(std::function<void()> fn) = 0;

    /** Security domain, for core-occupancy accounting. */
    virtual sim::DomainId executorDomain() const = 0;

    /**
     * Confidential guests run in realm world: every transition on and
     * off CPU is a world switch with the firmware's mitigation flush
     * (exactly the per-exit cost core gapping avoids paying).
     */
    virtual bool confidential() const = 0;
};

/** A host kernel thread wrapping a coroutine process. */
class Thread
{
  public:
    const std::string& name() const;
    sim::Process& process() { return *proc_; }
    SchedClass schedClass() const { return cls_; }
    CpuMask affinity() const { return affinity_; }
    CoreId lastCore() const { return lastCore_; }
    bool onCpu() const { return onCpu_; }
    bool done() const;

    /** Change affinity; a queued thread may migrate at next dispatch. */
    void setAffinity(CpuMask m);

    /**
     * Working-set size in cache lines, used for microarchitectural
     * pollution/warm-up accounting when this thread is dispatched.
     */
    std::size_t footprint = 64;

  private:
    friend class Kernel;

    Thread(Kernel& k, SchedClass cls, CpuMask affinity);

    Kernel& kernel_;
    sim::Process* proc_ = nullptr;
    SchedClass cls_;
    CpuMask affinity_;
    CoreId lastCore_ = sim::invalidCore;
    bool onCpu_ = false;   ///< currently current on a core
    bool queued_ = false;  ///< sitting in a runqueue
    Tick remaining_ = 0;   ///< outstanding CPU demand for current Compute
    bool wantsCpu_ = false; ///< has an unfinished Compute outstanding
    bool needsResume_ = false; ///< coroutine must resume once on-CPU
    GuestExecutor* guestRun_ = nullptr; ///< in guest mode (KVM_RUN)
    bool guestEndPending_ = false; ///< exit-ready event scheduled
};

/** State the kernel keeps per physical core. */
struct CoreSched {
    bool online = true;
    Thread* current = nullptr;
    Thread* lastRan = nullptr;
    std::deque<Thread*> fifoQueue;
    std::deque<Thread*> fairQueue;
    /** Event that either completes the compute or resumes the thread. */
    sim::EventId runEvent = sim::invalidEventId;
    sim::EventId timesliceEvent = sim::invalidEventId;
    bool dispatchPending = false;
    /** When the current thread's chargeable work started. */
    Tick runChargeStart = 0;
    /** World-switch cost carried into the next dispatch. */
    Tick pendingSwitchCost = 0;
    /** Extra time stolen from the current thread by IRQ handlers. */
    Tick pendingSteal = 0;
};

/** Statistics the kernel exports. */
struct KernelStats {
    sim::Counter contextSwitches;
    sim::Counter migrations;
    sim::Counter ipis;
    sim::Counter irqs;
    sim::Counter hotplugOps;
    /** Hotplug operations that failed (fault injection only). */
    sim::Counter hotplugFailures;
};

class Kernel : public sim::Dispatcher
{
  public:
    /** Fair-class timeslice when a core is contended. */
    static constexpr Tick quantum = 3 * sim::msec;

    explicit Kernel(hw::Machine& machine);
    ~Kernel() override;

    hw::Machine& machine() { return machine_; }
    sim::Simulation& sim();
    KernelStats& stats() { return stats_; }

    /** Register the kernel's counters under "host." in @p reg. */
    void registerStats(sim::StatRegistry& reg);

    /** @{ Threads. */
    Thread& createThread(std::string name, Proc<void> body,
                         SchedClass cls = SchedClass::Fair,
                         CpuMask affinity = CpuMask::all());

    /** Voluntarily yield the CPU: requeue at the tail of the runqueue. */
    struct YieldAwaiter;
    YieldAwaiter yield();

    /**
     * Run guest code on the calling thread until the guest has an exit
     * pending (KVM_RUN). The thread consumes CPU for the whole guest
     * run and may be preempted/migrated like any other thread, pausing
     * the guest. The caller collects the exit from the executor
     * afterwards.
     */
    struct GuestRunAwaiter;
    GuestRunAwaiter runGuest(GuestExecutor& g);
    /** @} */

    /** @{ CPU hotplug. */
    bool isOnline(CoreId c) const;
    int onlineCount() const;

    /**
     * Take @p c offline: migrate its threads, retarget its IRQs, and —
     * per the paper's modification (section 4.2) — leave it running at
     * full frequency for handover to the security monitor instead of
     * halting it. Completes after the modelled hotplug latency.
     * @return false if the operation failed (fault injection: the
     * core is untouched and stays online); callers must handle it.
     */
    Proc<bool> offlineCore(CoreId c);

    /**
     * Bring @p c back online and start scheduling on it again.
     * @return false if the operation failed (fault injection: the
     * core stays offline); callers may retry.
     */
    Proc<bool> onlineCore(CoreId c);
    /** @} */

    /** @{ Interrupts. */
    /**
     * Allocate one of the free SGI numbers for software use (Linux
     * reserves 7 of the 16; the paper's prototype allocates exactly one
     * more as the CVM-exit doorbell).
     */
    int allocateIpi();

    /** Send IPI @p ipi to core @p target. */
    void sendIpi(CoreId target, int ipi);

    /** Register the handler run (in IRQ context) for IPI @p ipi. */
    void setIpiHandler(int ipi, std::function<void(CoreId)> fn);

    /**
     * Remove a previously registered IPI handler. Owners whose handler
     * captures `this` must call this before they are destroyed, or a
     * later IPI dispatches into freed memory.
     */
    void clearIpiHandler(int ipi);

    /** Register a handler for a device SPI. */
    void setIrqHandler(hw::IntId spi, std::function<void(CoreId)> fn);

    /** Route a device SPI to a core. */
    void routeIrq(hw::IntId spi, CoreId target);
    /** @} */

    /** @{ sim::Dispatcher interface (threads only). */
    void compute(sim::Process& p, Tick amount) override;
    void blocked(sim::Process& p) override;
    void wake(sim::Process& p) override;
    void detach(sim::Process& p) override;
    /** @} */

    /** The thread owning @p p (asserts it is one of ours). */
    Thread& threadOf(sim::Process& p);

    /** Current thread on a core (nullptr if idle). */
    Thread* currentOn(CoreId c);

    /** Number of runnable threads queued on @p c (excluding current). */
    std::size_t queuedOn(CoreId c) const;

  private:
    friend struct YieldAwaiter;
    friend struct GuestRunAwaiter;

    void yieldCurrent(sim::Process& p);
    void beginGuestRun(sim::Process& p, GuestExecutor& g);
    void onGuestExitReady(Thread& t);
    void finishGuestRun(Thread& t);
    void abandonGuestRun(Thread& t);
    Proc<bool> offlineCoreImpl(CoreId c);
    Proc<bool> onlineCoreImpl(CoreId c);
    void enqueue(Thread& t);
    void requeueTail(Thread& t);
    CoreId pickCore(const Thread& t) const;
    void maybePreempt(CoreId c);
    void dispatch(CoreId c);
    void startRunning(CoreId c, Thread& t);
    void stopRunning(CoreId c, bool requeue);
    void scheduleRun(CoreId c, Tick overhead);
    void cancelCoreEvents(CoreSched& cs);
    void onRunEvent(CoreId c);
    void onTimeslice(CoreId c);
    void removeFromQueues(Thread& t);
    void migrateThreadsAway(CoreId c);
    void onInterrupt(CoreId c, hw::IntId id);
    void scheduleDispatch(CoreId c);

    hw::Machine& machine_;
    std::vector<CoreSched> cores_;
    std::vector<std::unique_ptr<Thread>> threads_;
    std::map<int, std::function<void(CoreId)>> ipiHandlers_;
    std::map<hw::IntId, std::function<void(CoreId)>> irqHandlers_;
    int nextIpi_ = 8; // SGIs 0-7 modelled as reserved by Linux
    KernelStats stats_;
    sim::StatGroup statGroup_;
};

/** Awaitable for Kernel::yield(). */
struct Kernel::YieldAwaiter {
    Kernel& kernel;

    bool await_ready() const { return false; }

    template <typename P>
    void
    await_suspend(std::coroutine_handle<P> h)
    {
        sim::Process& proc = sim::detail::processOf(h);
        proc.suspendAt(h);
        kernel.yieldCurrent(proc);
    }

    void await_resume() const {}
};

/** Awaitable for Kernel::runGuest(). */
struct Kernel::GuestRunAwaiter {
    Kernel& kernel;
    GuestExecutor& guest;

    bool await_ready() const { return false; }

    template <typename P>
    void
    await_suspend(std::coroutine_handle<P> h)
    {
        sim::Process& proc = sim::detail::processOf(h);
        proc.suspendAt(h);
        kernel.beginGuestRun(proc, guest);
    }

    void await_resume() const {}
};

} // namespace cg::host

#endif // CG_HOST_KERNEL_HH
