/**
 * @file
 * A CPU affinity mask over up to 64 cores (the machine sizes we model;
 * fig. 6 tops out at 64 cores).
 */

#ifndef CG_HOST_CPUMASK_HH
#define CG_HOST_CPUMASK_HH

#include <cstdint>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace cg::host {

using sim::CoreId;

class CpuMask
{
  public:
    constexpr CpuMask() = default;
    constexpr explicit CpuMask(std::uint64_t bits) : bits_(bits) {}

    static constexpr CpuMask
    single(CoreId c)
    {
        return CpuMask(1ULL << c);
    }

    static constexpr CpuMask
    firstN(int n)
    {
        return n >= 64 ? CpuMask(~0ULL) : CpuMask((1ULL << n) - 1);
    }

    static constexpr CpuMask
    all()
    {
        return CpuMask(~0ULL);
    }

    constexpr bool
    test(CoreId c) const
    {
        return c >= 0 && c < 64 && (bits_ >> c) & 1;
    }

    void
    set(CoreId c)
    {
        CG_ASSERT(c >= 0 && c < 64, "core id out of mask range");
        bits_ |= 1ULL << c;
    }

    void
    clear(CoreId c)
    {
        CG_ASSERT(c >= 0 && c < 64, "core id out of mask range");
        bits_ &= ~(1ULL << c);
    }

    constexpr bool empty() const { return bits_ == 0; }
    constexpr std::uint64_t bits() const { return bits_; }

    constexpr int
    count() const
    {
        return __builtin_popcountll(bits_);
    }

    constexpr CpuMask
    operator&(CpuMask o) const
    {
        return CpuMask(bits_ & o.bits_);
    }

    constexpr CpuMask
    operator|(CpuMask o) const
    {
        return CpuMask(bits_ | o.bits_);
    }

    constexpr bool operator==(const CpuMask&) const = default;

  private:
    std::uint64_t bits_ = 0;
};

} // namespace cg::host

#endif // CG_HOST_CPUMASK_HH
