#include "vmm/sriov.hh"

#include "sim/simulation.hh"

namespace cg::vmm {

using guest::VCpu;
using sim::Compute;
using sim::Tick;

SriovNic::SriovNic(KvmVm& vm, NetworkFabric& fabric, Config cfg)
    : vm_(vm), fabric_(fabric), cfg_(cfg)
{
    port_ = fabric_.attach([this](const Packet& p) { onFabricRx(p); });
    if (!cfg_.directToGuest) {
        host::Kernel& k = vm_.kernel();
        k.routeIrq(cfg_.msiSpi, cfg_.msiTargetCore);
        k.setIrqHandler(cfg_.msiSpi, [this](sim::CoreId) {
            // Host IRQ handler forwards the VF interrupt into the
            // guest (no direct delivery in the prototype, 5.3).
            vm_.queueInjection(cfg_.irqVcpu, cfg_.virq);
        });
    }
    vm_.guestVm().vcpu(cfg_.irqVcpu).setVirqHandler(
        cfg_.virq, [this] { onGuestIrq(); });
}

sim::Proc<void>
SriovNic::guestSend(VCpu& v, std::uint64_t bytes, int dst_port,
                    std::uint64_t cookie)
{
    hw::Machine& m = v.vm().machine();
    const hw::Costs& costs = m.costs();
    // Guest network stack + posted doorbell write; the VF DMAs the
    // payload itself (serialisation happens on the fabric port).
    co_await Compute{m.cost(costs.guestNetStack) +
                     m.cost(costs.sriovDoorbell)};
    Packet p;
    p.bytes = bytes;
    p.srcPort = port_;
    p.dstPort = dst_port;
    p.cookie = cookie;
    fabric_.send(p);
    ++txPackets_;
}

sim::Proc<Packet>
SriovNic::guestRecv(VCpu& v)
{
    hw::Machine& m = v.vm().machine();
    if (guestRx_.empty() && !rxDone_.empty()) {
        // NAPI poll: under load the driver pulls DMA'd packets from
        // the ring directly, with interrupts disabled.
        co_await Compute{m.cost(300 * sim::nsec)};
        while (!rxDone_.empty()) {
            guestRx_.send(rxDone_.front());
            rxDone_.pop_front();
        }
    }
    if (guestRx_.empty() && rxDone_.empty()) {
        // Out of work: re-enable the interrupt before blocking.
        irqArmed_ = true;
    }
    Packet p = co_await guestRx_.recv();
    // Payload already in guest memory via DMA: stack cost only.
    co_await Compute{m.cost(m.costs().guestNetStack)};
    co_return p;
}

void
SriovNic::onFabricRx(const Packet& pkt)
{
    rxDone_.push_back(pkt);
    ++rxPackets_;
    // DMA complete: the VF raises its MSI towards the host — unless
    // the driver is polling with interrupts masked (NAPI).
    if (irqArmed_) {
        irqArmed_ = false;
        vm_.kernel().machine().gic().raiseSpi(cfg_.msiSpi);
    }
}

void
SriovNic::onGuestIrq()
{
    while (!rxDone_.empty()) {
        guestRx_.send(rxDone_.front());
        rxDone_.pop_front();
    }
}

} // namespace cg::vmm
