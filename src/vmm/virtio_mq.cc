#include "vmm/virtio_mq.hh"

#include "sim/simulation.hh"
#include "vmm/virtio.hh" // virtioKickOffset: shared doorbell layout

namespace cg::vmm {

using guest::VCpu;
using sim::Compute;
using sim::Tick;

namespace {

/** Copy cost at @p bytes_per_sec bandwidth. */
Tick
copyCost(std::uint64_t bytes, double bytes_per_sec)
{
    return static_cast<Tick>(static_cast<double>(bytes) /
                             bytes_per_sec * 1e12);
}

} // namespace

MqVirtioNet::MqVirtioNet(KvmVm& vm, NetworkFabric& fabric, Config cfg)
    : vm_(vm), fabric_(fabric), cfg_(cfg)
{
    if (cfg_.numQueues < 1)
        sim::fatal("mqnet: need at least one queue");
    if (cfg_.backend == Backend::IpuOffload && cfg_.ipuCores.empty())
        sim::fatal("mqnet: IpuOffload backend needs reserved I/O cores");

    port_ = fabric_.attach([this](const Packet& p) { onFabricRx(p); });

    MmioRange r;
    r.base = cfg_.mmioBase;
    r.size = 0x1000;
    r.onWrite = [this](const rmm::ExitInfo& e) { onKickMmio(e.addr); };
    r.onRead = [](std::uint64_t, int) { return 0ull; };
    vm_.mapMmio(r);

    host::Kernel& k = vm_.kernel();
    sim::EventQueue& eq = k.machine().sim().queue();
    for (int q = 0; q < cfg_.numQueues; ++q) {
        queues_.push_back(std::make_unique<Queue>(eq));
        const hw::IntId virq = cfg_.irqBase + q;
        vm_.guestVm().vcpu(irqVcpu(q)).setVirqHandler(
            virq, [this, q] { onGuestIrq(q); });
        if (cfg_.backend == Backend::IpuOffload && !cfg_.directRx) {
            // Hosted MSI path: the IPU's per-queue interrupt lands on
            // a host core which forwards it into the guest.
            const hw::IntId spi = cfg_.msiSpiBase + q;
            k.routeIrq(spi, cfg_.msiTargetCore);
            k.setIrqHandler(spi, [this, q](sim::CoreId) {
                vm_.queueInjection(irqVcpu(q), cfg_.irqBase + q);
            });
        }
        const std::string name = sim::strFormat(
            "%s/mqnet-io.q%d", vm.guestVm().name().c_str(), q);
        if (cfg_.backend == Backend::IpuOffload) {
            // Dedicated I/O core: the emulation thread owns it
            // outright, like firmware on an IPU core.
            const sim::CoreId core = cfg_.ipuCores[
                static_cast<size_t>(q) % cfg_.ipuCores.size()];
            queues_.back()->ioThread = &k.createThread(
                name, ioThreadBody(q), host::SchedClass::Fifo,
                host::CpuMask::single(core));
        } else {
            queues_.back()->ioThread = &k.createThread(
                name, ioThreadBody(q), host::SchedClass::Fair,
                cfg_.ioThreadAffinity);
        }
        queues_.back()->ioThread->footprint = 512;
    }
}

MqVirtioNet::~MqVirtioNet()
{
    for (auto& q : queues_) {
        if (q->ioThread && !q->ioThread->done())
            q->ioThread->process().kill();
    }
}

sim::Simulation&
MqVirtioNet::sim() const
{
    return vm_.kernel().machine().sim();
}

int
MqVirtioNet::irqVcpu(int q) const
{
    return q % vm_.guestVm().numVcpus();
}

sim::Tick
MqVirtioNet::publishDelay() const
{
    if (cfg_.eventIdxPublishDelay != 0)
        return cfg_.eventIdxPublishDelay;
    return vm_.kernel().machine().costs().cacheLineTransfer;
}

std::uint64_t
MqVirtioNet::txPackets() const
{
    std::uint64_t n = 0;
    for (const auto& q : queues_)
        n += q->txPackets_.value();
    return n;
}

std::uint64_t
MqVirtioNet::rxPackets() const
{
    std::uint64_t n = 0;
    for (const auto& q : queues_)
        n += q->rxPackets_.value();
    return n;
}

std::uint64_t
MqVirtioNet::kickRescues() const
{
    std::uint64_t n = 0;
    for (const auto& q : queues_)
        n += q->kickRescues_.value();
    return n;
}

const std::vector<std::uint64_t>&
MqVirtioNet::txLog(int queue) const
{
    return queues_.at(static_cast<size_t>(queue))->txLog;
}

sim::Proc<void>
MqVirtioNet::guestSend(VCpu& v, std::uint64_t bytes, int dst_port,
                       std::uint64_t cookie)
{
    const hw::Costs& costs = v.vm().machine().costs();
    co_await Compute{v.vm().machine().cost(costs.guestNetStack) +
                     copyCost(bytes, costs.guestCopyBw)};
    const int qi = static_cast<int>(
        cookie % static_cast<std::uint64_t>(cfg_.numQueues));
    Queue& q = *queues_[static_cast<size_t>(qi)];
    q.txRing.push_back(TxReq{bytes, dst_port, cookie});
    ++q.unkicked;
    // Doorbell batching: defer the (possibly trapped) kick until a
    // burst accumulated; guestRecv flushes before blocking so the
    // tail of a burst is never stranded.
    if (q.unkicked >= cfg_.kickBatchLimit)
        co_await flushKicks(v, qi);
}

sim::Proc<void>
MqVirtioNet::guestFlush(VCpu& v, int queue)
{
    co_await flushKicks(v, queue);
}

sim::Proc<void>
MqVirtioNet::flushKicks(VCpu& v, int qi)
{
    Queue& q = *queues_[static_cast<size_t>(qi)];
    if (q.unkicked == 0)
        co_return;
    const int batch = q.unkicked;
    q.unkicked = 0;
    q.kickBatch_.sample(static_cast<double>(batch));
    sim().tracer().instant("mq-kick-flush", sim::Tracer::domainsPid, 0,
                           "batch",
                           static_cast<std::uint64_t>(batch));
    if (!q.kickGate.armed()) {
        // EVENT_IDX: the device is draining (or its re-arm is still
        // in flight) — it will see the burst on its next ring check.
        q.kicksSuppressed_.inc();
        co_return;
    }
    q.kicks_.inc();
    if (cfg_.backend == Backend::Trapped) {
        kickExits_.inc();
        co_await v.mmioWrite(cfg_.mmioBase + virtioKickOffset +
                                 static_cast<std::uint64_t>(qi) *
                                     mqKickStride,
                             1, 4);
    } else {
        // Posted doorbell: a store that crosses the interconnect to
        // the IPU core — no trap, no exit. The device notices one
        // cache-line transfer later.
        hw::Machine& m = v.vm().machine();
        co_await Compute{m.cost(m.costs().sriovDoorbell)};
        sim().queue().scheduleIn(
            vm_.kernel().machine().costs().cacheLineTransfer,
            [this, qi] {
                queues_[static_cast<size_t>(qi)]->ioNotify.notifyAll();
            });
    }
}

sim::Proc<Packet>
MqVirtioNet::guestRecv(VCpu& v, int queue)
{
    Queue& q = *queues_.at(static_cast<size_t>(queue));
    const hw::Costs& costs = v.vm().machine().costs();
    if (q.guestRx.empty() && !q.rxDone.empty()) {
        // NAPI poll: pull already-copied packets without an interrupt.
        co_await Compute{v.vm().machine().cost(300 * sim::nsec)};
        while (!q.rxDone.empty()) {
            q.guestRx.send(q.rxDone.front());
            q.rxDone.pop_front();
        }
    }
    if (q.guestRx.empty() && q.rxDone.empty())
        q.irqArmed = true; // out of work: re-enable the interrupt
    // About to block: don't strand a partial TX burst behind us.
    co_await flushKicks(v, queue);
    Packet p = co_await q.guestRx.recv();
    co_await Compute{v.vm().machine().cost(costs.guestNetStack) +
                     copyCost(p.bytes, costs.guestCopyBw)};
    co_return p;
}

void
MqVirtioNet::onKickMmio(std::uint64_t addr)
{
    const std::uint64_t off = addr - cfg_.mmioBase - virtioKickOffset;
    const auto qi = static_cast<int>(off / mqKickStride);
    if (qi < 0 || qi >= cfg_.numQueues)
        return; // stray write inside the window: not a doorbell
    queues_[static_cast<size_t>(qi)]->ioNotify.notifyAll();
}

void
MqVirtioNet::onFabricRx(const Packet& pkt)
{
    // RSS: the flow cookie hashes the packet to its queue.
    const auto qi = static_cast<size_t>(
        pkt.cookie % static_cast<std::uint64_t>(cfg_.numQueues));
    queues_[qi]->rxBacklog.push_back(pkt);
    queues_[qi]->ioNotify.notifyAll();
}

void
MqVirtioNet::onGuestIrq(int qi)
{
    Queue& q = *queues_[static_cast<size_t>(qi)];
    while (!q.rxDone.empty()) {
        q.guestRx.send(q.rxDone.front());
        q.rxDone.pop_front();
    }
}

void
MqVirtioNet::recheckAfterPublish(int qi)
{
    Queue& q = *queues_[static_cast<size_t>(qi)];
    if (q.txRing.empty() && q.rxBacklog.empty())
        return; // nothing raced the publish
    if (sim().faults().query(sim::FaultSite::VirtioLostKick))
        return; // the historical bug: recheck skipped, kick lost
    q.kickRescues_.inc();
    q.ioNotify.notifyAll();
}

sim::Proc<void>
MqVirtioNet::ioThreadBody(int qi)
{
    Queue& q = *queues_[static_cast<size_t>(qi)];
    hw::Machine& m = vm_.kernel().machine();
    const hw::Costs& costs = m.costs();
    for (;;) {
        while (q.txRing.empty() && q.rxBacklog.empty()) {
            q.kickGate.publishArmed(
                publishDelay(), [this, qi] { recheckAfterPublish(qi); });
            co_await q.ioNotify.wait();
        }
        q.kickGate.disarm(); // draining: kicks are redundant until idle
        q.queueDepth_.sample(
            static_cast<double>(q.txRing.size() + q.rxBacklog.size()));
        sim().tracer().instant(
            "mq-queue-depth", sim::Tracer::domainsPid, 0, "depth",
            static_cast<std::uint64_t>(q.txRing.size() +
                                       q.rxBacklog.size()));
        if (!q.txRing.empty()) {
            TxReq req = q.txRing.front();
            q.txRing.pop_front();
            co_await Compute{m.cost(costs.virtioDescCost) +
                             copyCost(req.bytes, costs.vmmCopyBw)};
            Packet p;
            p.bytes = req.bytes;
            p.srcPort = port_;
            p.dstPort = req.dstPort;
            p.cookie = req.cookie;
            fabric_.send(p);
            q.txPackets_.inc();
            if (cfg_.recordTxLog)
                q.txLog.push_back(req.cookie);
        }
        if (!q.rxBacklog.empty()) {
            Packet p = q.rxBacklog.front();
            q.rxBacklog.pop_front();
            co_await Compute{m.cost(costs.virtioDescCost) +
                             copyCost(p.bytes, costs.vmmCopyBw)};
            q.rxDone.push_back(p);
            q.rxPackets_.inc();
            if (q.irqArmed) {
                q.irqArmed = false;
                q.irqs_.inc();
                if (cfg_.directRx) {
                    // The monitor injects straight into the guest's
                    // dedicated core: no host on the completion path.
                    m.gic().raiseSpi(cfg_.msiSpiBase + qi);
                } else if (cfg_.backend == Backend::IpuOffload) {
                    m.gic().raiseSpi(cfg_.msiSpiBase + qi);
                } else {
                    vm_.queueInjection(irqVcpu(qi), cfg_.irqBase + qi);
                }
            }
        }
    }
}

void
MqVirtioNet::registerStats(sim::StatRegistry& reg)
{
    statGroup_.attach(reg, sim::strFormat(
        "mqnet.%s", vm_.guestVm().name().c_str()));
    statGroup_.add("kick-exits", kickExits_);
    for (int i = 0; i < cfg_.numQueues; ++i) {
        Queue& q = *queues_[static_cast<size_t>(i)];
        const std::string p = sim::strFormat("q%d.", i);
        statGroup_.add(p + "tx-packets", q.txPackets_);
        statGroup_.add(p + "rx-packets", q.rxPackets_);
        statGroup_.add(p + "kicks", q.kicks_);
        statGroup_.add(p + "kicks-suppressed", q.kicksSuppressed_);
        statGroup_.add(p + "kick-rescues", q.kickRescues_);
        statGroup_.add(p + "irqs", q.irqs_);
        statGroup_.add(p + "kick-batch", q.kickBatch_);
        statGroup_.add(p + "queue-depth", q.queueDepth_);
    }
}

} // namespace cg::vmm
