/**
 * @file
 * The network fabric: a latency/bandwidth model connecting NIC ports
 * (guest virtio backends, SR-IOV virtual functions, and the remote
 * client machine used by NetPIPE/Redis). Stands in for the paper's
 * 200 GbE IPU and switch (section 5.3).
 */

#ifndef CG_VMM_NETFABRIC_HH
#define CG_VMM_NETFABRIC_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.hh"

namespace cg::sim {
class Simulation;
}

namespace cg::vmm {

using sim::Tick;

/** A network packet (sizes matter; contents are a cookie). */
struct Packet {
    std::uint64_t bytes = 0;
    int srcPort = -1;
    int dstPort = -1;
    std::uint64_t cookie = 0; ///< opaque, threaded through to receiver
};

class NetworkFabric
{
  public:
    struct Config {
        /** One-way wire + switch latency. */
        Tick latency = 5 * sim::usec;
        /** Link bandwidth in bytes/second (200 GbE = 25e9). */
        double bytesPerSec = 25e9;
    };

    using RxHandler = std::function<void(const Packet&)>;

    NetworkFabric(sim::Simulation& sim, Config cfg);

    /** Attach a port; @p rx is called on packet arrival. */
    int attach(RxHandler rx);

    /** Transmit; serialises on the source port's link. */
    void send(Packet pkt);

    std::uint64_t packetsDelivered() const { return delivered_; }
    std::uint64_t bytesDelivered() const { return bytes_; }

  private:
    struct Port {
        RxHandler rx;
        Tick txFreeAt = 0; ///< link serialisation
    };

    sim::Simulation& sim_;
    Config cfg_;
    std::vector<Port> ports_;
    std::uint64_t delivered_ = 0;
    std::uint64_t bytes_ = 0;
};

} // namespace cg::vmm

#endif // CG_VMM_NETFABRIC_HH
