/**
 * @file
 * An NVMe-class block device model: fixed access latency plus
 * bandwidth-limited transfer, serialised on the device. Backs the
 * virtio-blk emulation for IOzone (fig. 9) and the kernel-build
 * workload (fig. 10).
 */

#ifndef CG_VMM_DISK_HH
#define CG_VMM_DISK_HH

#include <cstdint>

#include "sim/proc.hh"
#include "sim/types.hh"

namespace cg::sim {
class Simulation;
}

namespace cg::vmm {

using sim::Tick;

class Disk
{
  public:
    struct Config {
        Tick readLatency = 75 * sim::usec;
        Tick writeLatency = 25 * sim::usec; // write cache absorbs
        double bytesPerSec = 2.8e9;
    };

    Disk(sim::Simulation& sim, Config cfg);

    /** Perform an I/O; completes after queueing + latency + transfer. */
    sim::Proc<void> io(std::uint64_t bytes, bool write);

    std::uint64_t opsCompleted() const { return ops_; }
    std::uint64_t bytesTransferred() const { return bytes_; }

  private:
    sim::Simulation& sim_;
    Config cfg_;
    Tick busyUntil_ = 0;
    std::uint64_t ops_ = 0;
    std::uint64_t bytes_ = 0;
};

} // namespace cg::vmm

#endif // CG_VMM_DISK_HH
