#include "vmm/virtio.hh"

#include "sim/simulation.hh"

namespace cg::vmm {

using guest::VCpu;
using sim::Compute;
using sim::Tick;

namespace {

/** Copy cost at @p bytes_per_sec bandwidth. */
Tick
copyCost(std::uint64_t bytes, double bytes_per_sec)
{
    return static_cast<Tick>(static_cast<double>(bytes) /
                             bytes_per_sec * 1e12);
}

} // namespace

// ------------------------------------------------------------- VirtioNet

VirtioNet::VirtioNet(KvmVm& vm, NetworkFabric& fabric, Config cfg)
    : vm_(vm), fabric_(fabric), cfg_(cfg),
      kickGate_(vm.kernel().machine().sim().queue())
{
    port_ = fabric_.attach([this](const Packet& p) { onFabricRx(p); });
    MmioRange r;
    r.base = cfg_.mmioBase;
    r.size = 0x1000;
    r.onWrite = [this](const rmm::ExitInfo&) { onKick(); };
    r.onRead = [](std::uint64_t, int) { return 0ull; };
    vm_.mapMmio(r);
    vm_.guestVm().vcpu(cfg_.irqVcpu).setVirqHandler(
        cfg_.irq, [this] { onGuestIrq(); });
    ioThread_ = &vm_.kernel().createThread(
        sim::strFormat("%s/virtio-net-io", vm.guestVm().name().c_str()),
        ioThreadBody(), host::SchedClass::Fair, cfg_.ioThreadAffinity);
    ioThread_->footprint = 512;
}

VirtioNet::~VirtioNet()
{
    if (ioThread_ && !ioThread_->done())
        ioThread_->process().kill();
}

sim::Proc<void>
VirtioNet::guestSend(VCpu& v, std::uint64_t bytes, int dst_port,
                     std::uint64_t cookie)
{
    const hw::Costs& costs = v.vm().machine().costs();
    co_await Compute{v.vm().machine().cost(costs.guestNetStack) +
                     copyCost(bytes, costs.guestCopyBw)};
    const bool was_empty = txRing_.empty();
    txRing_.push_back(TxReq{bytes, dst_port, cookie});
    // EVENT_IDX: a non-empty ring means the device has already been
    // told (it drains to empty before re-arming), and the trapped
    // doorbell is only worth a VM exit while the device's armed flag
    // is visible — a push inside the publish window is suppressed and
    // relies on the device's recheck-after-publish.
    if (was_empty && kickGate_.armed())
        co_await v.mmioWrite(cfg_.mmioBase + virtioKickOffset, 1, 4);
    else if (was_empty)
        ++kicksSuppressed_;
}

sim::Proc<Packet>
VirtioNet::guestRecv(VCpu& v)
{
    const hw::Costs& costs = v.vm().machine().costs();
    if (guestRx_.empty() && !rxDone_.empty()) {
        // NAPI poll: pull already-copied packets without an interrupt.
        co_await Compute{v.vm().machine().cost(300 * sim::nsec)};
        while (!rxDone_.empty()) {
            guestRx_.send(rxDone_.front());
            rxDone_.pop_front();
        }
    }
    if (guestRx_.empty() && rxDone_.empty())
        irqArmed_ = true; // out of work: re-enable the interrupt
    Packet p = co_await guestRx_.recv();
    co_await Compute{v.vm().machine().cost(costs.guestNetStack) +
                     copyCost(p.bytes, costs.guestCopyBw)};
    co_return p;
}

void
VirtioNet::onKick()
{
    ioNotify_.notifyAll();
}

void
VirtioNet::onFabricRx(const Packet& pkt)
{
    rxBacklog_.push_back(pkt);
    ioNotify_.notifyAll();
}

sim::Tick
VirtioNet::publishDelay() const
{
    if (cfg_.eventIdxPublishDelay != 0)
        return cfg_.eventIdxPublishDelay;
    return vm_.kernel().machine().costs().cacheLineTransfer;
}

void
VirtioNet::recheckAfterPublish()
{
    if (txRing_.empty() && rxBacklog_.empty())
        return; // nothing raced the publish
    // A descriptor landed inside the publish window: its kick was
    // suppressed and the armed flag was not yet visible — without this
    // recheck the queue stalls until unrelated traffic wakes us.
    sim::Simulation& s = vm_.kernel().machine().sim();
    if (s.faults().query(sim::FaultSite::VirtioLostKick))
        return; // the historical bug: recheck skipped, kick lost
    ++kickRescues_;
    ioNotify_.notifyAll();
}

void
VirtioNet::onGuestIrq()
{
    // Guest interrupt handler: move completed packets to the driver.
    while (!rxDone_.empty()) {
        guestRx_.send(rxDone_.front());
        rxDone_.pop_front();
    }
}

sim::Proc<void>
VirtioNet::ioThreadBody()
{
    const hw::Costs& costs = vm_.kernel().machine().costs();
    hw::Machine& m = vm_.kernel().machine();
    for (;;) {
        while (txRing_.empty() && rxBacklog_.empty()) {
            // About to sleep: re-arm the guest-visible kick flag. The
            // recheck runs when the publish lands, closing the window
            // against descriptors pushed while it was in flight.
            kickGate_.publishArmed(publishDelay(),
                                   [this] { recheckAfterPublish(); });
            co_await ioNotify_.wait();
        }
        kickGate_.disarm(); // draining: kicks are redundant until idle
        if (!txRing_.empty()) {
            TxReq req = txRing_.front();
            txRing_.pop_front();
            co_await Compute{m.cost(costs.virtioDescCost) +
                             copyCost(req.bytes, costs.vmmCopyBw)};
            Packet p;
            p.bytes = req.bytes;
            p.srcPort = port_;
            p.dstPort = req.dstPort;
            p.cookie = req.cookie;
            fabric_.send(p);
            ++txPackets_;
        }
        if (!rxBacklog_.empty()) {
            Packet p = rxBacklog_.front();
            rxBacklog_.pop_front();
            co_await Compute{m.cost(costs.virtioDescCost) +
                             copyCost(p.bytes, costs.vmmCopyBw)};
            rxDone_.push_back(p);
            ++rxPackets_;
            if (irqArmed_) {
                irqArmed_ = false;
                vm_.queueInjection(cfg_.irqVcpu, cfg_.irq);
            }
        }
    }
}

// ------------------------------------------------------------- VirtioBlk

VirtioBlk::VirtioBlk(KvmVm& vm, Disk& disk, Config cfg)
    : vm_(vm), disk_(disk), cfg_(cfg)
{
    MmioRange r;
    r.base = cfg_.mmioBase;
    r.size = 0x1000;
    r.onWrite = [this](const rmm::ExitInfo&) { onKick(); };
    r.onRead = [](std::uint64_t, int) { return 0ull; };
    vm_.mapMmio(r);
    vm_.guestVm().vcpu(cfg_.irqVcpu).setVirqHandler(
        cfg_.irq, [this] { onGuestIrq(); });
    ioThread_ = &vm_.kernel().createThread(
        sim::strFormat("%s/virtio-blk-io", vm.guestVm().name().c_str()),
        ioThreadBody(), host::SchedClass::Fair, cfg_.ioThreadAffinity);
    ioThread_->footprint = 512;
}

VirtioBlk::~VirtioBlk()
{
    if (ioThread_ && !ioThread_->done())
        ioThread_->process().kill();
}

sim::Proc<void>
VirtioBlk::guestIo(VCpu& v, std::uint64_t bytes, bool write)
{
    const hw::Costs& costs = v.vm().machine().costs();
    co_await Compute{v.vm().machine().cost(costs.guestBlkStack) +
                     copyCost(bytes, costs.guestCopyBw)};
    const std::uint64_t cookie = nextCookie_++;
    sim::Notify& wait = waiters_[cookie];
    const bool was_empty = ring_.empty();
    ring_.push_back(BlkReq{bytes, write, cookie});
    if (was_empty)
        co_await v.mmioWrite(cfg_.mmioBase + virtioKickOffset, 1, 4);
    co_await wait.wait();
    waiters_.erase(cookie);
}

void
VirtioBlk::onKick()
{
    ioNotify_.notifyAll();
}

void
VirtioBlk::onGuestIrq()
{
    while (!done_.empty()) {
        const std::uint64_t cookie = done_.front();
        done_.pop_front();
        ++completedCount_;
        auto it = waiters_.find(cookie);
        if (it != waiters_.end())
            it->second.notifyAll();
    }
}

sim::Proc<void>
VirtioBlk::ioThreadBody()
{
    const hw::Costs& costs = vm_.kernel().machine().costs();
    hw::Machine& m = vm_.kernel().machine();
    for (;;) {
        while (ring_.empty())
            co_await ioNotify_.wait();
        BlkReq req = ring_.front();
        ring_.pop_front();
        co_await Compute{m.cost(costs.virtioDescCost) +
                         copyCost(req.bytes, costs.vmmCopyBw)};
        co_await disk_.io(req.bytes, req.write);
        co_await Compute{m.cost(costs.virtioDescCost)};
        done_.push_back(req.cookie);
        vm_.queueInjection(cfg_.irqVcpu, cfg_.irq);
    }
}

} // namespace cg::vmm
