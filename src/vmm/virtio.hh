/**
 * @file
 * Virtio device emulation: the exit-intensive I/O path of figs. 8/9.
 *
 * Each device is a pair of halves:
 *  - a guest-side driver API (called from guest processes): builds
 *    descriptors, pays guest-kernel stack costs, and *kicks* the device
 *    through a trapped MMIO doorbell write — the VM exit whose cost
 *    differs between shared-core and core-gapped configurations;
 *  - a host-side emulation thread (a VMM I/O thread contending for
 *    host CPU): pops descriptors, pays copy costs, talks to the
 *    backend (network fabric / disk), and injects completion IRQs.
 *
 * Kick suppression mirrors virtio's EVENT_IDX: the device publishes an
 * armed flag (KickGate) before sleeping and disarms it while draining;
 * the guest only pays for the trapped doorbell while the flag is
 * visible. The publish has cache-line timing, so the device re-checks
 * the ring once the flag lands (the lost-kick window close).
 */

#ifndef CG_VMM_VIRTIO_HH
#define CG_VMM_VIRTIO_HH

#include <deque>
#include <map>

#include "vmm/disk.hh"
#include "vmm/kick.hh"
#include "vmm/kvm.hh"
#include "vmm/netfabric.hh"

namespace cg::vmm {

/** Default MMIO window assignments (one page per device). */
constexpr std::uint64_t virtioNetMmioBase = 0x0a000000;
constexpr std::uint64_t virtioBlkMmioBase = 0x0a001000;
constexpr std::uint64_t virtioKickOffset = 0x50;

/** Emulated virtio network interface. */
class VirtioNet
{
  public:
    struct Config {
        std::uint64_t mmioBase = virtioNetMmioBase;
        hw::IntId irq = 40;   ///< completion/RX virtual interrupt
        int irqVcpu = 0;      ///< vCPU receiving device interrupts
        host::CpuMask ioThreadAffinity = host::CpuMask::all();
        /** How long the EVENT_IDX armed flag takes to become guest-
         * visible; 0 = the machine's cacheLineTransfer cost. Tests
         * crank this up to widen the lost-kick window. */
        sim::Tick eventIdxPublishDelay = 0;
    };

    VirtioNet(KvmVm& vm, NetworkFabric& fabric, Config cfg);
    ~VirtioNet();

    /** This NIC's port on the fabric. */
    int port() const { return port_; }

    /** @{ Guest driver API (call from guest processes). */
    /** Transmit a packet; returns once handed to the device ring. */
    sim::Proc<void> guestSend(guest::VCpu& v, std::uint64_t bytes,
                              int dst_port, std::uint64_t cookie = 0);

    /** Receive the next packet (blocks the guest process). */
    sim::Proc<Packet> guestRecv(guest::VCpu& v);
    /** @} */

    std::uint64_t txPackets() const { return txPackets_; }
    std::uint64_t rxPackets() const { return rxPackets_; }

    /** Kicks suppressed because the device was already draining. */
    std::uint64_t kicksSuppressed() const { return kicksSuppressed_; }
    /** Descriptors rescued by the recheck-after-publish (each one is
     * a lost-kick stall that did not happen). */
    std::uint64_t kickRescues() const { return kickRescues_; }

  private:
    struct TxReq {
        std::uint64_t bytes;
        int dstPort;
        std::uint64_t cookie;
    };

    sim::Proc<void> ioThreadBody();
    void onKick();
    void onFabricRx(const Packet& pkt);
    void onGuestIrq();
    void recheckAfterPublish();
    sim::Tick publishDelay() const;

    KvmVm& vm_;
    NetworkFabric& fabric_;
    Config cfg_;
    int port_;
    std::deque<TxReq> txRing_;
    std::deque<Packet> rxBacklog_; ///< arrived, awaiting VMM copy
    std::deque<Packet> rxDone_;    ///< copied in, awaiting guest IRQ
    /** NAPI-style coalescing of RX completion interrupts. */
    bool irqArmed_ = true;
    /** EVENT_IDX: guest kicks only while this gate reads armed. */
    KickGate kickGate_;
    std::uint64_t kicksSuppressed_ = 0;
    std::uint64_t kickRescues_ = 0;
    sim::Notify ioNotify_;
    sim::Channel<Packet> guestRx_;
    host::Thread* ioThread_ = nullptr;
    std::uint64_t txPackets_ = 0;
    std::uint64_t rxPackets_ = 0;
};

/** Emulated virtio block device. */
class VirtioBlk
{
  public:
    struct Config {
        std::uint64_t mmioBase = virtioBlkMmioBase;
        hw::IntId irq = 41;
        int irqVcpu = 0;
        host::CpuMask ioThreadAffinity = host::CpuMask::all();
    };

    VirtioBlk(KvmVm& vm, Disk& disk, Config cfg);
    ~VirtioBlk();

    /**
     * Synchronous (O_DIRECT-style) block I/O from a guest process:
     * returns when the completion interrupt has been handled.
     */
    sim::Proc<void> guestIo(guest::VCpu& v, std::uint64_t bytes,
                            bool write);

    std::uint64_t requestsCompleted() const { return completedCount_; }

  private:
    struct BlkReq {
        std::uint64_t bytes;
        bool write;
        std::uint64_t cookie;
    };

    sim::Proc<void> ioThreadBody();
    void onKick();
    void onGuestIrq();

    KvmVm& vm_;
    Disk& disk_;
    Config cfg_;
    std::deque<BlkReq> ring_;
    std::deque<std::uint64_t> done_;      ///< completions awaiting IRQ
    std::map<std::uint64_t, sim::Notify> waiters_;
    sim::Notify ioNotify_;
    host::Thread* ioThread_ = nullptr;
    std::uint64_t nextCookie_ = 1;
    std::uint64_t completedCount_ = 0;
};

} // namespace cg::vmm

#endif // CG_VMM_VIRTIO_HH
