#include "vmm/kick.hh"

#include <algorithm>

namespace cg::vmm {

KickBroker::KickBroker(host::Kernel& kernel)
    : kernel_(kernel), ipi_(kernel.allocateIpi())
{
    kernel_.setIpiHandler(ipi_,
                          [this](sim::CoreId c) { onIpi(c); });
}

void
KickBroker::kick(guest::VCpu& v)
{
    const sim::CoreId c = v.currentCore();
    if (c == sim::invalidCore)
        return; // not in guest: its runner is already in host code
    auto& q = pending_[c];
    if (std::find(q.begin(), q.end(), &v) == q.end())
        q.push_back(&v);
    ++sent_;
    kernel_.sendIpi(c, ipi_);
}

void
KickGate::publishArmed(sim::Tick delay, std::function<void()> on_visible)
{
    if (armed_ || pending_ != sim::invalidEventId)
        return;
    ++publishes_;
    pending_ = queue_.scheduleIn(
        delay, [this, fn = std::move(on_visible)] {
            pending_ = sim::invalidEventId;
            armed_ = true;
            // The flag is now guest-visible; close the lost-kick
            // window by re-checking for work that raced the publish.
            fn();
        });
}

void
KickBroker::onIpi(sim::CoreId core)
{
    auto it = pending_.find(core);
    if (it == pending_.end())
        return;
    std::vector<guest::VCpu*> batch;
    batch.swap(it->second);
    for (guest::VCpu* v : batch) {
        // Only exit vCPUs still executing guest code; the rest already
        // returned to host for another reason.
        if (v->entered())
            v->forceExit(rmm::ExitReason::HostKick);
    }
}

} // namespace cg::vmm
