/**
 * @file
 * The KVM + userspace-VMM model: thread-per-vCPU run loops, VM-exit
 * dispatch, MMIO emulation routing, virtual-GIC interrupt injection,
 * and (for confidential VMs) the same-core SMC transport into the RMM.
 *
 * Two shared-core modes live here:
 *  - SharedCore: a normal non-confidential VM — the baseline the
 *    paper's evaluation compares against (section 5.1);
 *  - SharedCoreCvm: a confidential VM run the baseline CCA way, with a
 *    world switch + mitigation flush on every exit (the configuration
 *    the paper could not measure on real hardware; section 5.5 argues
 *    core gapping beats it — our EXPERIMENTS.md checks that claim).
 *
 * The core-gapped transport lives in src/core and reuses this file's
 * exit-handling logic.
 */

#ifndef CG_VMM_KVM_HH
#define CG_VMM_KVM_HH

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "guest/vm.hh"
#include "host/kernel.hh"
#include "rmm/rmm.hh"
#include "sim/stat_registry.hh"
#include "sim/stats.hh"
#include "sim/sync.hh"
#include "vmm/kick.hh"

namespace cg::vmm {

using sim::Proc;
using sim::Tick;

/** Execution mode for a VM's vCPUs. */
enum class VmMode {
    SharedCore,    ///< normal VM (non-confidential baseline)
    SharedCoreCvm, ///< confidential VM, baseline CCA (same-core RMM)
};

struct KvmConfig {
    VmMode mode = VmMode::SharedCore;
    host::SchedClass vcpuClass = host::SchedClass::Fair;
    host::CpuMask vcpuAffinity = host::CpuMask::all();
    std::size_t vcpuThreadFootprint = 96;
    /**
     * Intel-TDX-style address-space management (section 6.1): the
     * host manipulates the untrusted page-table levels directly and
     * only the final private-page acceptance goes through the
     * monitor, so stage-2 faults need fewer monitor calls than Arm
     * CCA, where every RTT update is an RMI.
     */
    bool tdxStylePageTables = false;
};

/** An emulated MMIO register range (backed by a userspace device). */
struct MmioRange {
    std::uint64_t base = 0;
    std::uint64_t size = 0;
    /** Write handler (e.g. a virtqueue kick doorbell). */
    std::function<void(const rmm::ExitInfo&)> onWrite;
    /** Read handler; returns the register value. */
    std::function<std::uint64_t(std::uint64_t addr, int len)> onRead;
};

/**
 * How host-side RMI calls reach the security monitor: a same-core SMC
 * (baseline CCA: world switch + mitigation flushes, > 12.8 us in
 * table 2) or a cross-core synchronous RPC (core-gapped, 257.7 ns).
 */
class RmiTransport
{
  public:
    virtual ~RmiTransport() = default;

    /** Execute @p op on the monitor, charging transport costs. */
    virtual Proc<rmm::RmiStatus>
    call(std::function<rmm::RmiStatus()> op) = 0;
};

/** Same-core SMC transport: EL3 round trip plus mitigation flushes. */
class LocalSmcTransport : public RmiTransport
{
  public:
    explicit LocalSmcTransport(hw::Machine& m) : machine_(m) {}

    Proc<rmm::RmiStatus>
    call(std::function<rmm::RmiStatus()> op) override;

  private:
    hw::Machine& machine_;
};

struct KvmStats {
    sim::Counter exits;
    sim::Counter irqRelatedExits;
    sim::Counter mmioExits;
    sim::Counter wfiExits;
    sim::Counter pageFaultExits;
    sim::Counter injections;
    /** RMI calls re-issued after a transient Busy/Timeout status. */
    sim::Counter rmiRetries;
    /** RMI calls abandoned after maxRmiRetries transient failures. */
    sim::Counter rmiGiveUps;
    /** Time from a vCPU exit to its next (re-)entry. */
    sim::LatencyStat runToRun;
};

/**
 * One VM as the host manages it: vCPU threads, exit handling, device
 * routing. For confidential VMs, also the RMI client state.
 */
class KvmVm
{
  public:
    KvmVm(host::Kernel& kernel, guest::Vm& vm, KickBroker& kicks,
          KvmConfig cfg);
    ~KvmVm();

    host::Kernel& kernel() { return kernel_; }
    guest::Vm& guestVm() { return vm_; }
    const KvmConfig& config() const { return cfg_; }
    KvmStats& stats() { return stats_; }

    /** Register this VM's counters under "kvm.<vm name>." in @p reg. */
    void registerStats(sim::StatRegistry& reg);

    /**
     * Bind this VM to a realm (required for SharedCoreCvm). Use
     * createRealmFor() to build the realm through the RMI first.
     */
    void attachRealm(rmm::Rmm& rmm, int realm_id,
                     RmiTransport* transport = nullptr);

    rmm::Rmm* rmm() { return rmm_; }
    int realmId() const { return realmId_; }

    /** Toggle section 6.1's TDX-style address-space management. */
    void setTdxStylePageTables(bool on) { cfg_.tdxStylePageTables = on; }

    /** Register an emulated MMIO range. */
    void mapMmio(MmioRange range);

    /**
     * Queue a virtual interrupt for @p vcpu (virtual GIC / irqfd). If
     * the vCPU is in guest code it is kicked; if its runner thread is
     * blocked it is woken; injection happens at the next entry.
     */
    void queueInjection(int vcpu, hw::IntId virq);

    /** Create and start the vCPU threads. */
    void start();

    /** Opens once every vCPU has taken a Shutdown exit. */
    sim::Gate& shutdownGate() { return shutdownGate_; }

    /** Kill the vCPU threads (teardown without guest shutdown). */
    void stop();

    /**
     * Exit-handling policy shared with the core-gapped runner: applies
     * the host-side effect of @p e for @p vcpu and charges KVM costs.
     * MMIO read results / future injections are left in the per-vCPU
     * queues that the next entry consumes.
     */
    Proc<void> applyExit(int vcpu, rmm::ExitInfo e);

    /** Block until the vCPU is worth re-entering (WFI semantics). */
    Proc<void> waitRunnable(int vcpu);

    /** Drain queued injections for args/LR installation. */
    std::vector<hw::IntId> drainInjections(int vcpu);

    /**
     * Replace the default vCPU-interruption path (KickBroker) — the
     * core-gapped runner targets the REC's dedicated core instead.
     */
    void setKickOverride(std::function<void(int vcpu)> fn);

    /** Called when a vCPU takes its Shutdown exit (for custom runners). */
    void notifyVcpuShutdown() { onVcpuShutdown(); }

    /** Mark vCPUs alive before driving exits via a custom runner. */
    void setAliveVcpus(int n) { aliveVcpus_ = n; }

    /** Take (and clear) a pending MMIO read response. */
    std::optional<std::uint64_t> takeMmioResponse(int vcpu);

    /** @{ Transient-RMI retry policy. */
    /** Re-issues of one RMI call before giving up on it. */
    static constexpr int maxRmiRetries = 4;
    /** Backoff before the first re-issue; doubles per retry. */
    static constexpr Tick rmiRetryDelay = 2 * sim::usec;
    /** @} */

  private:
    Proc<void> vcpuThreadShared(int idx);
    Proc<void> vcpuThreadSharedCvm(int idx);
    Proc<void> handleMmio(int idx, rmm::ExitInfo e);
    Proc<void> cvmMapPage(std::uint64_t ipa);

    /**
     * Issue an RMI through the transport with transient-failure
     * handling: Busy and Timeout statuses are retried with
     * exponential backoff up to maxRmiRetries times (both mean the
     * operation did not run, so a re-issue is safe), then surfaced to
     * the caller. Fault injection (RmiTransientError) produces the
     * Busy responses in testing.
     */
    Proc<rmm::RmiStatus> rmiCall(std::function<rmm::RmiStatus()> op);
    MmioRange* findMmio(std::uint64_t addr);
    void onVcpuShutdown();
    Tick cost(Tick nominal);

    host::Kernel& kernel_;
    guest::Vm& vm_;
    KickBroker& kicks_;
    KvmConfig cfg_;
    rmm::Rmm* rmm_ = nullptr;
    int realmId_ = -1;
    RmiTransport* transport_ = nullptr;
    std::unique_ptr<LocalSmcTransport> ownedTransport_;
    std::vector<MmioRange> mmio_;
    std::vector<std::deque<hw::IntId>> injQueue_;
    std::vector<std::optional<std::uint64_t>> mmioResp_;
    std::vector<host::Thread*> threads_;
    std::function<void(int)> kickOverride_;
    sim::Gate shutdownGate_;
    int aliveVcpus_ = 0;
    std::uint64_t nextGranule_;
    KvmStats stats_;
    sim::StatGroup statGroup_;
};

/**
 * Build a realm for @p vm through the RMI: delegate granules, create
 * the realm and one REC per vCPU, populate initial data (measured),
 * attach guest contexts, and activate.
 * @return the realm id.
 */
int createRealmFor(rmm::Rmm& rmm, guest::Vm& vm);

} // namespace cg::vmm

#endif // CG_VMM_KVM_HH
