/**
 * @file
 * The vCPU kick broker: KVM's mechanism for interrupting a vCPU that
 * is currently executing guest code, by sending a physical IPI to the
 * core running it. One SGI number is shared by all VMs (as in Linux).
 */

#ifndef CG_VMM_KICK_HH
#define CG_VMM_KICK_HH

#include <functional>
#include <map>
#include <vector>

#include "guest/vcpu.hh"
#include "host/kernel.hh"
#include "sim/event_queue.hh"

namespace cg::vmm {

class KickBroker
{
  public:
    explicit KickBroker(host::Kernel& kernel);

    /**
     * Interrupt @p v if it is executing guest code: an IPI reaches its
     * core and forces a HostKick exit. No-op for exited vCPUs (their
     * runner thread is already in host code).
     */
    void kick(guest::VCpu& v);

    std::uint64_t kicksSent() const { return sent_; }

  private:
    void onIpi(sim::CoreId core);

    host::Kernel& kernel_;
    int ipi_;
    std::map<sim::CoreId, std::vector<guest::VCpu*>> pending_;
    std::uint64_t sent_ = 0;
};

/**
 * The EVENT_IDX kick-suppression flag, modeled with memory-system
 * timing. The device side publishes "armed" (please kick me) before it
 * sleeps and disarms it while draining; the guest driver reads the
 * flag after pushing a descriptor and only pays for the trapped
 * doorbell write when it is visible.
 *
 * The publish is not instantaneous: like RunSlot's mailbox, the flag
 * crosses a cache line, so armed() flips @c delay ticks after
 * publishArmed(). That wire delay opens the classic EVENT_IDX lost-kick
 * window — a descriptor pushed after the device decided to sleep but
 * before the armed flag lands is kicked by neither side. Correct
 * backends therefore pass an @c on_visible callback that re-checks the
 * ring *after* the publish lands and self-notifies if work slipped in.
 * Skipping that recheck is the bug FaultSite::VirtioLostKick restores.
 */
class KickGate
{
  public:
    explicit KickGate(sim::EventQueue& q) : queue_(q) {}
    ~KickGate() { queue_.cancel(pending_); }

    KickGate(const KickGate&) = delete;
    KickGate& operator=(const KickGate&) = delete;

    /** Guest-visible: kick only when this reads true. */
    bool armed() const { return armed_; }

    /** Device starts draining: suppress kicks, drop any in-flight
     * publish (its recheck is superseded by the drain itself). */
    void disarm()
    {
        queue_.cancel(pending_);
        pending_ = sim::invalidEventId;
        armed_ = false;
    }

    /**
     * Device is about to sleep: schedule the armed flag to become
     * guest-visible after @p delay, then run @p on_visible (the ring
     * recheck). No-op if already armed or a publish is in flight, so
     * the wait loop may call this on every iteration.
     */
    void publishArmed(sim::Tick delay, std::function<void()> on_visible);

    /** Publishes that were still in flight when the device woke up
     * for another reason (RX traffic, a rescue recheck). */
    std::uint64_t publishes() const { return publishes_; }

  private:
    sim::EventQueue& queue_;
    bool armed_ = true; ///< device starts receptive: first kick lands
    sim::EventId pending_ = sim::invalidEventId;
    std::uint64_t publishes_ = 0;
};

} // namespace cg::vmm

#endif // CG_VMM_KICK_HH
