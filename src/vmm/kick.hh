/**
 * @file
 * The vCPU kick broker: KVM's mechanism for interrupting a vCPU that
 * is currently executing guest code, by sending a physical IPI to the
 * core running it. One SGI number is shared by all VMs (as in Linux).
 */

#ifndef CG_VMM_KICK_HH
#define CG_VMM_KICK_HH

#include <map>
#include <vector>

#include "guest/vcpu.hh"
#include "host/kernel.hh"

namespace cg::vmm {

class KickBroker
{
  public:
    explicit KickBroker(host::Kernel& kernel);

    /**
     * Interrupt @p v if it is executing guest code: an IPI reaches its
     * core and forces a HostKick exit. No-op for exited vCPUs (their
     * runner thread is already in host code).
     */
    void kick(guest::VCpu& v);

    std::uint64_t kicksSent() const { return sent_; }

  private:
    void onIpi(sim::CoreId core);

    host::Kernel& kernel_;
    int ipi_;
    std::map<sim::CoreId, std::vector<guest::VCpu*>> pending_;
    std::uint64_t sent_ = 0;
};

} // namespace cg::vmm

#endif // CG_VMM_KICK_HH
