/**
 * @file
 * SR-IOV virtual-function NIC passthrough (the paper's Intel E2000 IPU
 * path, section 5.3). Data moves by DMA directly between guest memory
 * and the NIC with no VM exit; only interrupts involve the host, since
 * the prototype does not support direct interrupt delivery: the VF's
 * MSI lands on a host core, and the host injects the virtual interrupt
 * into the guest (kick path).
 */

#ifndef CG_VMM_SRIOV_HH
#define CG_VMM_SRIOV_HH

#include <deque>

#include "vmm/kvm.hh"
#include "vmm/netfabric.hh"

namespace cg::vmm {

class SriovNic
{
  public:
    struct Config {
        hw::IntId msiSpi = 64; ///< physical MSI the VF raises
        hw::IntId virq = 48;   ///< virtual interrupt injected to guest
        int irqVcpu = 0;
        sim::CoreId msiTargetCore = 0; ///< host core receiving the MSI
        /**
         * Direct interrupt delivery (the further KVM/RMM changes the
         * paper's section 5.3 anticipates): the MSI is routed straight
         * to the guest's dedicated core and injected by the monitor,
         * bypassing the host. The owner must wire the route and the
         * monitor-side SPI-to-vIRQ mapping (GappedVm::mapDirectIrq).
         */
        bool directToGuest = false;
    };

    SriovNic(KvmVm& vm, NetworkFabric& fabric, Config cfg);

    int port() const { return port_; }

    /** @{ Guest driver API: exitless TX, interrupt-driven RX. */
    sim::Proc<void> guestSend(guest::VCpu& v, std::uint64_t bytes,
                              int dst_port, std::uint64_t cookie = 0);
    sim::Proc<Packet> guestRecv(guest::VCpu& v);
    /** @} */

    std::uint64_t txPackets() const { return txPackets_; }
    std::uint64_t rxPackets() const { return rxPackets_; }

  private:
    void onFabricRx(const Packet& pkt);
    void onGuestIrq();

    KvmVm& vm_;
    NetworkFabric& fabric_;
    Config cfg_;
    int port_;
    std::deque<Packet> rxDone_;
    sim::Channel<Packet> guestRx_;
    /** NAPI-style coalescing: MSIs fire only when the guest driver has
     * run out of work and re-armed the interrupt. */
    bool irqArmed_ = true;
    std::uint64_t txPackets_ = 0;
    std::uint64_t rxPackets_ = 0;
};

} // namespace cg::vmm

#endif // CG_VMM_SRIOV_HH
