#include "vmm/netfabric.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace cg::vmm {

NetworkFabric::NetworkFabric(sim::Simulation& sim, Config cfg)
    : sim_(sim), cfg_(cfg)
{
    CG_ASSERT(cfg_.bytesPerSec > 0, "fabric needs positive bandwidth");
}

int
NetworkFabric::attach(RxHandler rx)
{
    ports_.push_back(Port{std::move(rx), 0});
    return static_cast<int>(ports_.size()) - 1;
}

void
NetworkFabric::send(Packet pkt)
{
    CG_ASSERT(pkt.srcPort >= 0 &&
                  pkt.srcPort < static_cast<int>(ports_.size()),
              "bad source port %d", pkt.srcPort);
    CG_ASSERT(pkt.dstPort >= 0 &&
                  pkt.dstPort < static_cast<int>(ports_.size()),
              "bad destination port %d", pkt.dstPort);
    Port& src = ports_[static_cast<size_t>(pkt.srcPort)];
    const Tick now = sim_.now();
    const Tick ser = static_cast<Tick>(
        static_cast<double>(pkt.bytes) / cfg_.bytesPerSec * 1e12);
    const Tick tx_start = std::max(now, src.txFreeAt);
    src.txFreeAt = tx_start + ser;
    const Tick arrive =
        src.txFreeAt + sim_.rng().jittered(cfg_.latency, 0.05);
    sim_.queue().schedule(arrive, [this, pkt] {
        ++delivered_;
        bytes_ += pkt.bytes;
        Port& dst = ports_[static_cast<size_t>(pkt.dstPort)];
        if (dst.rx)
            dst.rx(pkt);
    });
}

} // namespace cg::vmm
