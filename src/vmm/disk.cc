#include "vmm/disk.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace cg::vmm {

Disk::Disk(sim::Simulation& sim, Config cfg) : sim_(sim), cfg_(cfg)
{
    CG_ASSERT(cfg_.bytesPerSec > 0, "disk needs positive bandwidth");
}

sim::Proc<void>
Disk::io(std::uint64_t bytes, bool write)
{
    const Tick now = sim_.now();
    const Tick latency = sim_.rng().jittered(
        write ? cfg_.writeLatency : cfg_.readLatency, 0.1);
    const Tick transfer = static_cast<Tick>(
        static_cast<double>(bytes) / cfg_.bytesPerSec * 1e12);
    const Tick start = std::max(now, busyUntil_);
    // The device pipelines access latency but serialises transfers.
    busyUntil_ = start + transfer;
    const Tick done = start + latency + transfer;
    ++ops_;
    bytes_ += bytes;
    co_await sim::Delay{done - now};
}

} // namespace cg::vmm
