#include "vmm/kvm.hh"

#include "sim/simulation.hh"

namespace cg::vmm {

using guest::VCpu;
using rmm::ExitInfo;
using rmm::ExitReason;
using sim::Compute;

/** Guest-run strategy for shared-core CVMs: consume vCPU-thread CPU. */
static Proc<ExitInfo> sharedCvmGuestRun(host::Kernel& k,
                                        rmm::GuestContext& g);

KvmVm::KvmVm(host::Kernel& kernel, guest::Vm& vm, KickBroker& kicks,
             KvmConfig cfg)
    : kernel_(kernel),
      vm_(vm),
      kicks_(kicks),
      cfg_(cfg),
      injQueue_(static_cast<size_t>(vm.numVcpus())),
      mmioResp_(static_cast<size_t>(vm.numVcpus())),
      nextGranule_((static_cast<std::uint64_t>(vm.domain()) + 1) << 32)
{}

KvmVm::~KvmVm()
{
    stop();
}

void
KvmVm::registerStats(sim::StatRegistry& reg)
{
    statGroup_.attach(reg, "kvm." + vm_.name());
    statGroup_.add("exits", stats_.exits);
    statGroup_.add("irqRelatedExits", stats_.irqRelatedExits);
    statGroup_.add("mmioExits", stats_.mmioExits);
    statGroup_.add("wfiExits", stats_.wfiExits);
    statGroup_.add("pageFaultExits", stats_.pageFaultExits);
    statGroup_.add("injections", stats_.injections);
    statGroup_.add("rmiRetries", stats_.rmiRetries);
    statGroup_.add("rmiGiveUps", stats_.rmiGiveUps);
    statGroup_.add("runToRun", stats_.runToRun);
}

void
KvmVm::stop()
{
    for (host::Thread* t : threads_) {
        if (t && !t->done())
            t->process().kill();
    }
}

Tick
KvmVm::cost(Tick nominal)
{
    return kernel_.machine().cost(nominal);
}

void
KvmVm::attachRealm(rmm::Rmm& rmm, int realm_id, RmiTransport* transport)
{
    rmm_ = &rmm;
    realmId_ = realm_id;
    transport_ = transport;
    if (!transport_) {
        // Baseline CCA: RMI calls are same-core SMCs.
        ownedTransport_ =
            std::make_unique<LocalSmcTransport>(kernel_.machine());
        transport_ = ownedTransport_.get();
    }
}

void
KvmVm::setKickOverride(std::function<void(int)> fn)
{
    kickOverride_ = std::move(fn);
}

Proc<rmm::RmiStatus>
LocalSmcTransport::call(std::function<rmm::RmiStatus()> op)
{
    const hw::Costs& costs = machine_.costs();
    // SMC to EL3, world switch into realm, mitigation flush on each
    // boundary crossing, and the handler itself.
    co_await Compute{machine_.cost(costs.smcRoundTrip) +
                     2 * machine_.cost(costs.worldSwitchHalf) +
                     2 * machine_.cost(costs.mitigationFlush) +
                     machine_.cost(costs.rmiShortCall)};
    co_return op();
}

void
KvmVm::mapMmio(MmioRange range)
{
    if (range.size == 0)
        sim::fatal("empty MMIO range");
    mmio_.push_back(std::move(range));
}

MmioRange*
KvmVm::findMmio(std::uint64_t addr)
{
    for (MmioRange& r : mmio_) {
        if (addr >= r.base && addr < r.base + r.size)
            return &r;
    }
    return nullptr;
}

void
KvmVm::queueInjection(int vcpu, hw::IntId virq)
{
    VCpu& v = vm_.vcpu(vcpu);
    stats_.injections.inc();
    if (cfg_.mode == VmMode::SharedCore && !v.entered()) {
        // Normal VM: the vGIC writes the list register directly; the
        // interrupt is delivered at the next entry.
        v.injectVirq(virq);
        return;
    }
    // Defer to the next entry's argument list; kick if in guest.
    injQueue_[static_cast<size_t>(vcpu)].push_back(virq);
    if (kickOverride_) {
        kickOverride_(vcpu);
        return;
    }
    if (v.entered())
        kicks_.kick(v);
    else
        v.runnerNotify().notifyAll();
}

std::vector<hw::IntId>
KvmVm::drainInjections(int vcpu)
{
    auto& q = injQueue_[static_cast<size_t>(vcpu)];
    std::vector<hw::IntId> out(q.begin(), q.end());
    q.clear();
    return out;
}

std::optional<std::uint64_t>
KvmVm::takeMmioResponse(int vcpu)
{
    auto& slot = mmioResp_[static_cast<size_t>(vcpu)];
    auto out = slot;
    slot.reset();
    return out;
}

Proc<void>
KvmVm::waitRunnable(int vcpu)
{
    VCpu& v = vm_.vcpu(vcpu);
    while (injQueue_[static_cast<size_t>(vcpu)].empty() &&
           !v.hasPendingEvent() && v.listRegs().pendingIds().empty() &&
           !v.hasRunnableGuestWork()) {
        co_await v.runnerNotify().wait();
    }
}

void
KvmVm::start()
{
    if (cfg_.mode == VmMode::SharedCoreCvm && !rmm_)
        sim::fatal("SharedCoreCvm VM '%s' has no realm attached",
                   vm_.name().c_str());
    aliveVcpus_ = vm_.numVcpus();
    for (int i = 0; i < vm_.numVcpus(); ++i) {
        VCpu& v = vm_.vcpu(i);
        v.setTickPeriod(vm_.config().tickPeriod);
        Proc<void> body = cfg_.mode == VmMode::SharedCore
                              ? vcpuThreadShared(i)
                              : vcpuThreadSharedCvm(i);
        host::Thread& t = kernel_.createThread(
            sim::strFormat("%s/vcpu%d-thread", vm_.name().c_str(), i),
            std::move(body), cfg_.vcpuClass, cfg_.vcpuAffinity);
        t.footprint = cfg_.vcpuThreadFootprint;
        threads_.push_back(&t);
    }
}

void
KvmVm::onVcpuShutdown()
{
    if (--aliveVcpus_ == 0)
        shutdownGate_.open();
}

// ----------------------------------------------------- exit-side policy

Proc<void>
KvmVm::applyExit(int idx, ExitInfo e)
{
    VCpu& v = vm_.vcpu(idx);
    stats_.exits.inc();
    if (e.interruptRelated())
        stats_.irqRelatedExits.inc();
    co_await Compute{cost(kernel_.machine().costs().kvmExitDispatch)};
    switch (e.reason) {
      case ExitReason::TimerIrq:
        // KVM's arch timer handler forwards the virtual timer IRQ.
        injQueue_[static_cast<size_t>(idx)].push_back(hw::vtimerPpi);
        break;
      case ExitReason::TimerWrite:
        break; // emulate CNTV write: dispatch cost only
      case ExitReason::SgiWrite:
        // vGIC: route the virtual IPI to the target vCPU.
        if (e.target >= 0 && e.target < vm_.numVcpus())
            queueInjection(e.target, hw::sgiBase + 1);
        break;
      case ExitReason::Wfi:
        stats_.wfiExits.inc();
        break; // the run loop blocks via waitRunnable()
      case ExitReason::Mmio:
        co_await handleMmio(idx, e);
        break;
      case ExitReason::PageFault:
        stats_.pageFaultExits.inc();
        if (cfg_.mode == VmMode::SharedCoreCvm || rmm_)
            co_await cvmMapPage(e.addr);
        else
            co_await Compute{cost(2500 * sim::nsec)};
        break;
      case ExitReason::HostKick:
      case ExitReason::Hypercall:
      case ExitReason::Shutdown:
      case ExitReason::None:
        break;
    }
    // Normal VMs install deferred injections straight into the vGIC.
    if (cfg_.mode == VmMode::SharedCore) {
        for (hw::IntId id : drainInjections(idx))
            v.injectVirq(id);
    }
}

Proc<void>
KvmVm::handleMmio(int idx, ExitInfo e)
{
    stats_.mmioExits.inc();
    // kvmtool handles MMIO in userspace: syscall return + decode.
    co_await Compute{cost(1800 * sim::nsec)};
    MmioRange* r = findMmio(e.addr);
    if (!r) {
        sim::warn("%s: MMIO %s at unmapped address 0x%llx",
                  vm_.name().c_str(), e.isWrite ? "write" : "read",
                  static_cast<unsigned long long>(e.addr));
        if (!e.isWrite)
            mmioResp_[static_cast<size_t>(idx)] = 0;
        co_return;
    }
    if (e.isWrite) {
        if (r->onWrite)
            r->onWrite(e);
    } else {
        const std::uint64_t val = r->onRead ? r->onRead(e.addr, e.len)
                                            : 0;
        mmioResp_[static_cast<size_t>(idx)] = val;
    }
}

Proc<rmm::RmiStatus>
KvmVm::rmiCall(std::function<rmm::RmiStatus()> op)
{
    sim::Simulation& sim = kernel_.sim();
    Tick backoff = rmiRetryDelay;
    bool injected = false;
    for (int attempt = 0;; ++attempt) {
        rmm::RmiStatus s;
        if (sim.faults().armed() &&
            sim.faults().query(sim::FaultSite::RmiTransientError)) {
            // The call reached the monitor but bounced off a transient
            // resource shortage: a short round trip, no effect.
            sim.faults().noteDetected(
                sim::FaultSite::RmiTransientError);
            injected = true;
            co_await Compute{
                cost(kernel_.machine().costs().pollReaction)};
            s = rmm::RmiStatus::Busy;
        } else {
            s = co_await transport_->call(op);
        }
        const bool transient = s == rmm::RmiStatus::Busy ||
                               s == rmm::RmiStatus::Timeout;
        if (!transient) {
            if (injected && s == rmm::RmiStatus::Success) {
                sim.faults().noteRecovered(
                    sim::FaultSite::RmiTransientError);
            }
            co_return s;
        }
        if (attempt >= maxRmiRetries) {
            stats_.rmiGiveUps.inc();
            co_return s;
        }
        stats_.rmiRetries.inc();
        co_await sim::Delay{backoff};
        backoff *= 2;
    }
}

Proc<void>
KvmVm::cvmMapPage(std::uint64_t ipa)
{
    CG_ASSERT(rmm_ && transport_, "CVM page fault without a realm");
    // Delegate a fresh granule and walk the RTT down to the leaf, one
    // RMI call per missing level, each going through the transport.
    const std::uint64_t page = ipa & ~(rmm::granuleSize - 1);
    rmm::Realm* r = rmm_->realm(realmId_);
    CG_ASSERT(r, "realm %d vanished", realmId_);
    // Create missing intermediate tables. On Arm CCA every level is
    // an RMI (granule delegate + RTT create); TDX-style management
    // edits the untrusted levels host-side without monitor calls
    // (section 6.1), so only the leaf acceptance pays the transport.
    for (;;) {
        if (r->rtt.translate(page).has_value())
            co_return; // already mapped (benign refault)
        if (r->rtt.tablesComplete(page))
            break; // only the leaf mapping is missing
        const int level = r->rtt.walkLevel(page);
        const std::uint64_t g = nextGranule_;
        nextGranule_ += rmm::granuleSize;
        rmm::Rmm* rmm = rmm_;
        const int realm = realmId_;
        if (cfg_.tdxStylePageTables) {
            co_await Compute{cost(400 * sim::nsec)};
            rmm->granuleDelegate(g);
            const rmm::RmiStatus s = rmm->rttCreate(realm, page,
                                                    level, g);
            CG_ASSERT(s == rmm::RmiStatus::Success, "rttCreate: %s",
                      rmm::rmiStatusName(s));
            continue;
        }
        const rmm::RmiStatus dg = co_await rmiCall(
            [rmm, g] { return rmm->granuleDelegate(g); });
        if (dg != rmm::RmiStatus::Success) {
            sim::warn("%s: granuleDelegate gave up: %s (page fault "
                      "unserviced; the guest refaults)",
                      vm_.name().c_str(), rmm::rmiStatusName(dg));
            co_return;
        }
        const rmm::RmiStatus s = co_await rmiCall(
            [rmm, realm, page, level, g] {
                return rmm->rttCreate(realm, page, level, g);
            });
        if (s == rmm::RmiStatus::Busy ||
            s == rmm::RmiStatus::Timeout) {
            sim::warn("%s: rttCreate gave up: %s (page fault "
                      "unserviced; the guest refaults)",
                      vm_.name().c_str(), rmm::rmiStatusName(s));
            co_return;
        }
        if (s == rmm::RmiStatus::BadState) {
            // Lost a benign race: another vCPU's fault handler created
            // this level between our walk and the monitor running the
            // call. Hand the granule back and re-walk.
            rmm->granuleUndelegate(g);
            continue;
        }
        CG_ASSERT(s == rmm::RmiStatus::Success, "rttCreate: %s",
                  rmm::rmiStatusName(s));
    }
    const std::uint64_t g = nextGranule_;
    nextGranule_ += rmm::granuleSize;
    rmm::Rmm* rmm = rmm_;
    const rmm::RmiStatus dg = co_await rmiCall(
        [rmm, g] { return rmm->granuleDelegate(g); });
    if (dg != rmm::RmiStatus::Success) {
        sim::warn("%s: granuleDelegate gave up: %s (page fault "
                  "unserviced; the guest refaults)",
                  vm_.name().c_str(), rmm::rmiStatusName(dg));
        co_return;
    }
    const int realm = realmId_;
    const rmm::RmiStatus s = co_await rmiCall(
        [rmm, realm, page, g] {
            return rmm->dataCreateUnknown(realm, page, g);
        });
    if (s == rmm::RmiStatus::Busy || s == rmm::RmiStatus::Timeout) {
        sim::warn("%s: dataCreateUnknown gave up: %s (page fault "
                  "unserviced; the guest refaults)",
                  vm_.name().c_str(), rmm::rmiStatusName(s));
        co_return;
    }
    if (s == rmm::RmiStatus::BadState &&
        r->rtt.translate(page).has_value()) {
        // Same benign race on the leaf: the page got mapped while our
        // call was in flight.
        rmm->granuleUndelegate(g);
        co_return;
    }
    CG_ASSERT(s == rmm::RmiStatus::Success, "dataCreateUnknown: %s",
              rmm::rmiStatusName(s));
}

// -------------------------------------------------------- vCPU threads

Proc<void>
KvmVm::vcpuThreadShared(int idx)
{
    VCpu& v = vm_.vcpu(idx);
    Tick last_exit = 0;
    for (;;) {
        for (hw::IntId id : drainInjections(idx))
            v.injectVirq(id);
        if (last_exit != 0)
            stats_.runToRun.sample(kernel_.sim().now() - last_exit);
        co_await kernel_.runGuest(v);
        ExitInfo e = v.takeExit();
        last_exit = kernel_.sim().now();
        co_await applyExit(idx, e);
        if (e.reason == ExitReason::Shutdown)
            break;
        if (e.reason == ExitReason::Wfi) {
            co_await waitRunnable(idx);
            co_await Compute{
                cost(kernel_.machine().costs().threadBlockUnblock)};
        }
    }
    onVcpuShutdown();
}

Proc<void>
KvmVm::vcpuThreadSharedCvm(int idx)
{
    hw::Machine& m = kernel_.machine();
    const hw::Costs& costs = m.costs();
    host::Kernel& k = kernel_;
    Tick last_exit = 0;
    // Guest execution must consume this thread's CPU time, so the RMM
    // runs the guest through the scheduler-coupled strategy.
    rmm::GuestRunFn run_fn = [&k](rmm::GuestContext& g,
                                  sim::CoreId) -> Proc<ExitInfo> {
        return sharedCvmGuestRun(k, g);
    };
    for (;;) {
        rmm::RecEnterArgs args;
        args.injectVirqs = drainInjections(idx);
        args.mmioResponse = takeMmioResponse(idx);
        if (last_exit != 0)
            stats_.runToRun.sample(kernel_.sim().now() - last_exit);
        // SMC into the RMM (the world switch + mitigation flush is
        // charged by the kernel when the guest goes on/off the core).
        const sim::CoreId c0 = threads_[static_cast<size_t>(idx)]
                                   ->lastCore();
        co_await Compute{cost(costs.smcRoundTrip) / 2};
        rmm::RecRunResult res = co_await rmm_->recEnter(
            realmId_, idx, std::move(args), c0, run_fn);
        co_await Compute{cost(costs.smcRoundTrip) / 2};
        last_exit = kernel_.sim().now();
        if (res.status != rmm::RmiStatus::Success) {
            sim::warn("%s/vcpu%d: REC enter failed: %s",
                      vm_.name().c_str(), idx,
                      rmm::rmiStatusName(res.status));
            break;
        }
        co_await applyExit(idx, res.exit);
        if (res.exit.reason == ExitReason::Shutdown)
            break;
        if (res.exit.reason == ExitReason::Wfi)
            co_await waitRunnable(idx);
    }
    onVcpuShutdown();
}

static Proc<ExitInfo>
sharedCvmGuestRun(host::Kernel& k, rmm::GuestContext& g)
{
    auto& v = dynamic_cast<VCpu&>(g);
    co_await k.runGuest(v);
    co_return v.takeExit();
}

// ---------------------------------------------------------- realm setup

int
createRealmFor(rmm::Rmm& rmm, guest::Vm& vm)
{
    // Granule addresses for this realm come from a private window.
    std::uint64_t next =
        (static_cast<std::uint64_t>(vm.domain()) + 0x100) << 32;
    auto granule = [&next, &rmm]() {
        const std::uint64_t g = next;
        next += rmm::granuleSize;
        const rmm::RmiStatus s = rmm.granuleDelegate(g);
        CG_ASSERT(s == rmm::RmiStatus::Success, "delegate failed: %s",
                  rmm::rmiStatusName(s));
        return g;
    };

    int realm = -1;
    rmm::RealmParams params;
    params.name = vm.name();
    rmm::RmiStatus s = rmm.realmCreate(granule(), params, realm);
    if (s != rmm::RmiStatus::Success)
        sim::fatal("realmCreate failed: %s", rmm::rmiStatusName(s));

    // Populate the initial (measured) image: boot pages at IPA 0.
    for (int level = 1; level <= rmm::rttLeafLevel; ++level) {
        s = rmm.rttCreate(realm, 0, level, granule());
        CG_ASSERT(s == rmm::RmiStatus::Success, "rttCreate: %s",
                  rmm::rmiStatusName(s));
    }
    for (int page = 0; page < 64; ++page) {
        s = rmm.dataCreate(realm,
                           static_cast<std::uint64_t>(page) *
                               rmm::granuleSize,
                           granule(), 0xb007ull + page);
        CG_ASSERT(s == rmm::RmiStatus::Success, "dataCreate: %s",
                  rmm::rmiStatusName(s));
    }

    for (int i = 0; i < vm.numVcpus(); ++i) {
        int rec = -1;
        s = rmm.recCreate(realm, granule(), rec);
        CG_ASSERT(s == rmm::RmiStatus::Success, "recCreate: %s",
                  rmm::rmiStatusName(s));
        CG_ASSERT(rec == i, "REC index mismatch");
        rmm.setGuestContext(realm, rec, &vm.vcpu(i));
    }

    s = rmm.realmActivate(realm);
    CG_ASSERT(s == rmm::RmiStatus::Success, "realmActivate: %s",
              rmm::rmiStatusName(s));
    vm.setConfidential(true);
    return realm;
}

} // namespace cg::vmm
