/**
 * @file
 * Multi-queue virtio-net and its IPU-offloaded sibling: the serving
 * path of the open-loop latency sweeps (DESIGN.md section 11).
 *
 * One device carries @c numQueues independent TX/RX queue pairs. Each
 * queue has its own doorbell (one MMIO word per queue inside the
 * device window), its own completion interrupt, its own EVENT_IDX
 * KickGate, its own NAPI coalescing state, and its own emulation
 * thread, so queues never serialise on each other in the VMM. Packets
 * steer to queues RSS-style by flow cookie.
 *
 * Two backends share the guest-facing API:
 *  - Backend::Trapped — classic VMM emulation: I/O threads are Fair
 *    host threads, doorbells are trapped MMIO writes (VM exits on the
 *    data path);
 *  - Backend::IpuOffload — the paper's section 5.3 direction taken to
 *    its end state: emulation runs on reserved I/O cores (Fifo, one
 *    core each), the doorbell is a posted write that crosses the
 *    interconnect with cache-line timing, and with @c directRx the
 *    completion MSI is injected by the monitor. Zero VM exits on the
 *    data path.
 *
 * Doorbells are batched: guestSend() only enqueues; the accumulated
 * burst is flushed by one doorbell when it reaches kickBatchLimit or
 * when the guest is about to block in guestRecv(). Under load one
 * trapped exit (or one posted write) therefore covers many packets.
 */

#ifndef CG_VMM_VIRTIO_MQ_HH
#define CG_VMM_VIRTIO_MQ_HH

#include <deque>
#include <memory>
#include <vector>

#include "sim/stat_registry.hh"
#include "vmm/kick.hh"
#include "vmm/kvm.hh"
#include "vmm/netfabric.hh"

namespace cg::vmm {

/** Default MMIO window for the multi-queue NIC (own page, clear of
 * the single-queue devices). */
constexpr std::uint64_t mqNetMmioBase = 0x0a100000;
/** Per-queue doorbell stride inside the window: queue q kicks at
 * mmioBase + virtioKickOffset(0x50) + q * mqKickStride. */
constexpr std::uint64_t mqKickStride = 8;

class MqVirtioNet
{
  public:
    enum class Backend {
        Trapped,    ///< VMM I/O threads, trapped MMIO doorbells
        IpuOffload, ///< reserved I/O cores, posted doorbells
    };

    struct Config {
        std::uint64_t mmioBase = mqNetMmioBase;
        int numQueues = 4;
        /** Queue q completes through virtual interrupt irqBase + q,
         * delivered to vCPU q % numVcpus. */
        hw::IntId irqBase = 48;
        /** Queue q's MSI (IpuOffload backend): msiSpiBase + q. */
        hw::IntId msiSpiBase = 80;
        Backend backend = Backend::Trapped;
        /** Monitor-injected RX interrupts (gapped VMs only): the
         * owner wires GappedVm::mapDirectIrq per queue. */
        bool directRx = false;
        /** Flush the doorbell once this many sends are pending. */
        int kickBatchLimit = 8;
        /** EVENT_IDX armed-flag publish latency; 0 = the machine's
         * cacheLineTransfer cost. */
        sim::Tick eventIdxPublishDelay = 0;
        /** Trapped backend: where the I/O threads may run. */
        host::CpuMask ioThreadAffinity = host::CpuMask::all();
        /** IpuOffload backend: the reserved I/O cores; queue q pins
         * to ipuCores[q % size]. */
        std::vector<sim::CoreId> ipuCores;
        /** Hosted (non-direct) RX: host core receiving the MSIs. */
        sim::CoreId msiTargetCore = 0;
        /** Record per-queue TX processing order (determinism tests). */
        bool recordTxLog = false;
    };

    MqVirtioNet(KvmVm& vm, NetworkFabric& fabric, Config cfg);
    ~MqVirtioNet();

    int port() const { return port_; }
    int numQueues() const { return cfg_.numQueues; }
    const Config& config() const { return cfg_; }

    /** @{ Guest driver API. TX steers to queue cookie % numQueues;
     * RX arrives on the queue the remote flow hashes to, so a thread
     * serving queue q calls guestRecv(v, q). */
    sim::Proc<void> guestSend(guest::VCpu& v, std::uint64_t bytes,
                              int dst_port, std::uint64_t cookie = 0);
    sim::Proc<Packet> guestRecv(guest::VCpu& v, int queue);
    /** Flush queue @p queue's pending doorbell burst immediately. */
    sim::Proc<void> guestFlush(guest::VCpu& v, int queue);
    /** @} */

    std::uint64_t txPackets() const;
    std::uint64_t rxPackets() const;
    /** Trapped doorbell writes taken on the TX path (VM exits). The
     * IpuOffload backend must keep this at zero. */
    std::uint64_t dataPathKickExits() const
    {
        return kickExits_.value();
    }
    /** Lost-kick stalls avoided by the recheck-after-publish. */
    std::uint64_t kickRescues() const;
    /** TX processing order of @p queue (cookie per packet), recorded
     * when Config::recordTxLog is set. */
    const std::vector<std::uint64_t>& txLog(int queue) const;

    /** Register "mqnet.<vm>.*" rows. */
    void registerStats(sim::StatRegistry& reg);

  private:
    struct TxReq {
        std::uint64_t bytes;
        int dstPort;
        std::uint64_t cookie;
    };

    /** Everything one queue pair owns. */
    struct Queue {
        explicit Queue(sim::EventQueue& q) : kickGate(q) {}

        std::deque<TxReq> txRing;
        std::deque<Packet> rxBacklog;
        std::deque<Packet> rxDone;
        sim::Channel<Packet> guestRx;
        sim::Notify ioNotify;
        KickGate kickGate;
        bool irqArmed = true;   ///< per-queue NAPI coalescing
        int unkicked = 0;       ///< sends since the last doorbell
        host::Thread* ioThread = nullptr;
        std::vector<std::uint64_t> txLog;
        sim::Counter txPackets_;
        sim::Counter rxPackets_;
        sim::Counter kicks_;
        sim::Counter kicksSuppressed_;
        sim::Counter kickRescues_;
        sim::Counter irqs_;
        sim::Accumulator kickBatch_;  ///< sends flushed per doorbell
        sim::Accumulator queueDepth_; ///< ring depth at service time
    };

    sim::Proc<void> ioThreadBody(int q);
    sim::Proc<void> flushKicks(guest::VCpu& v, int q);
    void onKickMmio(std::uint64_t addr);
    void onFabricRx(const Packet& pkt);
    void onGuestIrq(int q);
    void recheckAfterPublish(int q);
    sim::Tick publishDelay() const;
    int irqVcpu(int q) const;
    sim::Simulation& sim() const;

    KvmVm& vm_;
    NetworkFabric& fabric_;
    Config cfg_;
    int port_;
    std::vector<std::unique_ptr<Queue>> queues_;
    sim::Counter kickExits_; ///< trapped doorbells (data-path exits)
    sim::StatGroup statGroup_;
};

} // namespace cg::vmm

#endif // CG_VMM_VIRTIO_MQ_HH
