# Empty dependencies file for cg_hw.
# This may be replaced when dependencies are built.
