
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/gic.cc" "src/hw/CMakeFiles/cg_hw.dir/gic.cc.o" "gcc" "src/hw/CMakeFiles/cg_hw.dir/gic.cc.o.d"
  "/root/repo/src/hw/machine.cc" "src/hw/CMakeFiles/cg_hw.dir/machine.cc.o" "gcc" "src/hw/CMakeFiles/cg_hw.dir/machine.cc.o.d"
  "/root/repo/src/hw/timer.cc" "src/hw/CMakeFiles/cg_hw.dir/timer.cc.o" "gcc" "src/hw/CMakeFiles/cg_hw.dir/timer.cc.o.d"
  "/root/repo/src/hw/uarch.cc" "src/hw/CMakeFiles/cg_hw.dir/uarch.cc.o" "gcc" "src/hw/CMakeFiles/cg_hw.dir/uarch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
