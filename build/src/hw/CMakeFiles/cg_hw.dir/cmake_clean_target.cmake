file(REMOVE_RECURSE
  "libcg_hw.a"
)
