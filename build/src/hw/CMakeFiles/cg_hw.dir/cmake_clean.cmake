file(REMOVE_RECURSE
  "CMakeFiles/cg_hw.dir/gic.cc.o"
  "CMakeFiles/cg_hw.dir/gic.cc.o.d"
  "CMakeFiles/cg_hw.dir/machine.cc.o"
  "CMakeFiles/cg_hw.dir/machine.cc.o.d"
  "CMakeFiles/cg_hw.dir/timer.cc.o"
  "CMakeFiles/cg_hw.dir/timer.cc.o.d"
  "CMakeFiles/cg_hw.dir/uarch.cc.o"
  "CMakeFiles/cg_hw.dir/uarch.cc.o.d"
  "libcg_hw.a"
  "libcg_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
