
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vmm/disk.cc" "src/vmm/CMakeFiles/cg_vmm.dir/disk.cc.o" "gcc" "src/vmm/CMakeFiles/cg_vmm.dir/disk.cc.o.d"
  "/root/repo/src/vmm/kick.cc" "src/vmm/CMakeFiles/cg_vmm.dir/kick.cc.o" "gcc" "src/vmm/CMakeFiles/cg_vmm.dir/kick.cc.o.d"
  "/root/repo/src/vmm/kvm.cc" "src/vmm/CMakeFiles/cg_vmm.dir/kvm.cc.o" "gcc" "src/vmm/CMakeFiles/cg_vmm.dir/kvm.cc.o.d"
  "/root/repo/src/vmm/netfabric.cc" "src/vmm/CMakeFiles/cg_vmm.dir/netfabric.cc.o" "gcc" "src/vmm/CMakeFiles/cg_vmm.dir/netfabric.cc.o.d"
  "/root/repo/src/vmm/sriov.cc" "src/vmm/CMakeFiles/cg_vmm.dir/sriov.cc.o" "gcc" "src/vmm/CMakeFiles/cg_vmm.dir/sriov.cc.o.d"
  "/root/repo/src/vmm/virtio.cc" "src/vmm/CMakeFiles/cg_vmm.dir/virtio.cc.o" "gcc" "src/vmm/CMakeFiles/cg_vmm.dir/virtio.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/guest/CMakeFiles/cg_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/cg_host.dir/DependInfo.cmake"
  "/root/repo/build/src/rmm/CMakeFiles/cg_rmm.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cg_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
