file(REMOVE_RECURSE
  "libcg_vmm.a"
)
