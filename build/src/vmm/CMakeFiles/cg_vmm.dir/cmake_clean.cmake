file(REMOVE_RECURSE
  "CMakeFiles/cg_vmm.dir/disk.cc.o"
  "CMakeFiles/cg_vmm.dir/disk.cc.o.d"
  "CMakeFiles/cg_vmm.dir/kick.cc.o"
  "CMakeFiles/cg_vmm.dir/kick.cc.o.d"
  "CMakeFiles/cg_vmm.dir/kvm.cc.o"
  "CMakeFiles/cg_vmm.dir/kvm.cc.o.d"
  "CMakeFiles/cg_vmm.dir/netfabric.cc.o"
  "CMakeFiles/cg_vmm.dir/netfabric.cc.o.d"
  "CMakeFiles/cg_vmm.dir/sriov.cc.o"
  "CMakeFiles/cg_vmm.dir/sriov.cc.o.d"
  "CMakeFiles/cg_vmm.dir/virtio.cc.o"
  "CMakeFiles/cg_vmm.dir/virtio.cc.o.d"
  "libcg_vmm.a"
  "libcg_vmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_vmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
