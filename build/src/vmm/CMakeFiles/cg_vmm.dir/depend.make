# Empty dependencies file for cg_vmm.
# This may be replaced when dependencies are built.
