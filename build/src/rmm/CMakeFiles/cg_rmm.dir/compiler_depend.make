# Empty compiler generated dependencies file for cg_rmm.
# This may be replaced when dependencies are built.
