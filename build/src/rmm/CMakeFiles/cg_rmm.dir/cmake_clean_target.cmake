file(REMOVE_RECURSE
  "libcg_rmm.a"
)
