file(REMOVE_RECURSE
  "CMakeFiles/cg_rmm.dir/exit.cc.o"
  "CMakeFiles/cg_rmm.dir/exit.cc.o.d"
  "CMakeFiles/cg_rmm.dir/granule.cc.o"
  "CMakeFiles/cg_rmm.dir/granule.cc.o.d"
  "CMakeFiles/cg_rmm.dir/measurement.cc.o"
  "CMakeFiles/cg_rmm.dir/measurement.cc.o.d"
  "CMakeFiles/cg_rmm.dir/rmm.cc.o"
  "CMakeFiles/cg_rmm.dir/rmm.cc.o.d"
  "CMakeFiles/cg_rmm.dir/rtt.cc.o"
  "CMakeFiles/cg_rmm.dir/rtt.cc.o.d"
  "libcg_rmm.a"
  "libcg_rmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_rmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
