
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rmm/exit.cc" "src/rmm/CMakeFiles/cg_rmm.dir/exit.cc.o" "gcc" "src/rmm/CMakeFiles/cg_rmm.dir/exit.cc.o.d"
  "/root/repo/src/rmm/granule.cc" "src/rmm/CMakeFiles/cg_rmm.dir/granule.cc.o" "gcc" "src/rmm/CMakeFiles/cg_rmm.dir/granule.cc.o.d"
  "/root/repo/src/rmm/measurement.cc" "src/rmm/CMakeFiles/cg_rmm.dir/measurement.cc.o" "gcc" "src/rmm/CMakeFiles/cg_rmm.dir/measurement.cc.o.d"
  "/root/repo/src/rmm/rmm.cc" "src/rmm/CMakeFiles/cg_rmm.dir/rmm.cc.o" "gcc" "src/rmm/CMakeFiles/cg_rmm.dir/rmm.cc.o.d"
  "/root/repo/src/rmm/rtt.cc" "src/rmm/CMakeFiles/cg_rmm.dir/rtt.cc.o" "gcc" "src/rmm/CMakeFiles/cg_rmm.dir/rtt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/cg_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
