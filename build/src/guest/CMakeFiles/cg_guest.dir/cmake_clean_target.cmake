file(REMOVE_RECURSE
  "libcg_guest.a"
)
