# Empty dependencies file for cg_guest.
# This may be replaced when dependencies are built.
