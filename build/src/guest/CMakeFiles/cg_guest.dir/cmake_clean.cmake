file(REMOVE_RECURSE
  "CMakeFiles/cg_guest.dir/vcpu.cc.o"
  "CMakeFiles/cg_guest.dir/vcpu.cc.o.d"
  "CMakeFiles/cg_guest.dir/vm.cc.o"
  "CMakeFiles/cg_guest.dir/vm.cc.o.d"
  "libcg_guest.a"
  "libcg_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
