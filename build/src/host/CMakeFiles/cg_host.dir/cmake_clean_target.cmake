file(REMOVE_RECURSE
  "libcg_host.a"
)
