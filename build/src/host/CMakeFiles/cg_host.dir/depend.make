# Empty dependencies file for cg_host.
# This may be replaced when dependencies are built.
