file(REMOVE_RECURSE
  "CMakeFiles/cg_host.dir/kernel.cc.o"
  "CMakeFiles/cg_host.dir/kernel.cc.o.d"
  "libcg_host.a"
  "libcg_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
