file(REMOVE_RECURSE
  "libcg_attacks.a"
)
