# Empty compiler generated dependencies file for cg_attacks.
# This may be replaced when dependencies are built.
