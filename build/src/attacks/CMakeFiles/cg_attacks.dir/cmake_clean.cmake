file(REMOVE_RECURSE
  "CMakeFiles/cg_attacks.dir/catalog.cc.o"
  "CMakeFiles/cg_attacks.dir/catalog.cc.o.d"
  "CMakeFiles/cg_attacks.dir/lab.cc.o"
  "CMakeFiles/cg_attacks.dir/lab.cc.o.d"
  "libcg_attacks.a"
  "libcg_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
