file(REMOVE_RECURSE
  "CMakeFiles/cg_sim.dir/event_queue.cc.o"
  "CMakeFiles/cg_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/cg_sim.dir/logging.cc.o"
  "CMakeFiles/cg_sim.dir/logging.cc.o.d"
  "CMakeFiles/cg_sim.dir/proc.cc.o"
  "CMakeFiles/cg_sim.dir/proc.cc.o.d"
  "CMakeFiles/cg_sim.dir/rng.cc.o"
  "CMakeFiles/cg_sim.dir/rng.cc.o.d"
  "CMakeFiles/cg_sim.dir/simulation.cc.o"
  "CMakeFiles/cg_sim.dir/simulation.cc.o.d"
  "CMakeFiles/cg_sim.dir/stats.cc.o"
  "CMakeFiles/cg_sim.dir/stats.cc.o.d"
  "CMakeFiles/cg_sim.dir/sync.cc.o"
  "CMakeFiles/cg_sim.dir/sync.cc.o.d"
  "libcg_sim.a"
  "libcg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
