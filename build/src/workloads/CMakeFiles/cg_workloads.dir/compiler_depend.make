# Empty compiler generated dependencies file for cg_workloads.
# This may be replaced when dependencies are built.
