file(REMOVE_RECURSE
  "libcg_workloads.a"
)
