file(REMOVE_RECURSE
  "CMakeFiles/cg_workloads.dir/coremark.cc.o"
  "CMakeFiles/cg_workloads.dir/coremark.cc.o.d"
  "CMakeFiles/cg_workloads.dir/iozone.cc.o"
  "CMakeFiles/cg_workloads.dir/iozone.cc.o.d"
  "CMakeFiles/cg_workloads.dir/kbuild.cc.o"
  "CMakeFiles/cg_workloads.dir/kbuild.cc.o.d"
  "CMakeFiles/cg_workloads.dir/netpipe.cc.o"
  "CMakeFiles/cg_workloads.dir/netpipe.cc.o.d"
  "CMakeFiles/cg_workloads.dir/redis.cc.o"
  "CMakeFiles/cg_workloads.dir/redis.cc.o.d"
  "CMakeFiles/cg_workloads.dir/remote.cc.o"
  "CMakeFiles/cg_workloads.dir/remote.cc.o.d"
  "CMakeFiles/cg_workloads.dir/testbed.cc.o"
  "CMakeFiles/cg_workloads.dir/testbed.cc.o.d"
  "libcg_workloads.a"
  "libcg_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
