file(REMOVE_RECURSE
  "libcg_core.a"
)
