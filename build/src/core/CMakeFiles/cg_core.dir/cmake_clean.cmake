file(REMOVE_RECURSE
  "CMakeFiles/cg_core.dir/doorbell.cc.o"
  "CMakeFiles/cg_core.dir/doorbell.cc.o.d"
  "CMakeFiles/cg_core.dir/gapped_vm.cc.o"
  "CMakeFiles/cg_core.dir/gapped_vm.cc.o.d"
  "CMakeFiles/cg_core.dir/planner.cc.o"
  "CMakeFiles/cg_core.dir/planner.cc.o.d"
  "CMakeFiles/cg_core.dir/rpc.cc.o"
  "CMakeFiles/cg_core.dir/rpc.cc.o.d"
  "libcg_core.a"
  "libcg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
