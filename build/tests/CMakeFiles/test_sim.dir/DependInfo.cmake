
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_event_queue.cc" "tests/CMakeFiles/test_sim.dir/sim/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_event_queue.cc.o.d"
  "/root/repo/tests/sim/test_misc.cc" "tests/CMakeFiles/test_sim.dir/sim/test_misc.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_misc.cc.o.d"
  "/root/repo/tests/sim/test_proc.cc" "tests/CMakeFiles/test_sim.dir/sim/test_proc.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_proc.cc.o.d"
  "/root/repo/tests/sim/test_rng.cc" "tests/CMakeFiles/test_sim.dir/sim/test_rng.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_rng.cc.o.d"
  "/root/repo/tests/sim/test_stats.cc" "tests/CMakeFiles/test_sim.dir/sim/test_stats.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_stats.cc.o.d"
  "/root/repo/tests/sim/test_sync.cc" "tests/CMakeFiles/test_sim.dir/sim/test_sync.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_sync.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rmm/CMakeFiles/cg_rmm.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cg_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
