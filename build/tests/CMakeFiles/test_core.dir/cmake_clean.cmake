file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_direct_irq.cc.o"
  "CMakeFiles/test_core.dir/core/test_direct_irq.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_gapped.cc.o"
  "CMakeFiles/test_core.dir/core/test_gapped.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_hostile_host.cc.o"
  "CMakeFiles/test_core.dir/core/test_hostile_host.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_mixed_tenancy.cc.o"
  "CMakeFiles/test_core.dir/core/test_mixed_tenancy.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_planner.cc.o"
  "CMakeFiles/test_core.dir/core/test_planner.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_plumbing.cc.o"
  "CMakeFiles/test_core.dir/core/test_plumbing.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_rebind.cc.o"
  "CMakeFiles/test_core.dir/core/test_rebind.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_rsi.cc.o"
  "CMakeFiles/test_core.dir/core/test_rsi.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_suspend.cc.o"
  "CMakeFiles/test_core.dir/core/test_suspend.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_teardown_stress.cc.o"
  "CMakeFiles/test_core.dir/core/test_teardown_stress.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_terminate.cc.o"
  "CMakeFiles/test_core.dir/core/test_terminate.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
