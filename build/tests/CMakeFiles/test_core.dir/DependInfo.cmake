
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_direct_irq.cc" "tests/CMakeFiles/test_core.dir/core/test_direct_irq.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_direct_irq.cc.o.d"
  "/root/repo/tests/core/test_gapped.cc" "tests/CMakeFiles/test_core.dir/core/test_gapped.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_gapped.cc.o.d"
  "/root/repo/tests/core/test_hostile_host.cc" "tests/CMakeFiles/test_core.dir/core/test_hostile_host.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_hostile_host.cc.o.d"
  "/root/repo/tests/core/test_mixed_tenancy.cc" "tests/CMakeFiles/test_core.dir/core/test_mixed_tenancy.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_mixed_tenancy.cc.o.d"
  "/root/repo/tests/core/test_planner.cc" "tests/CMakeFiles/test_core.dir/core/test_planner.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_planner.cc.o.d"
  "/root/repo/tests/core/test_plumbing.cc" "tests/CMakeFiles/test_core.dir/core/test_plumbing.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_plumbing.cc.o.d"
  "/root/repo/tests/core/test_rebind.cc" "tests/CMakeFiles/test_core.dir/core/test_rebind.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_rebind.cc.o.d"
  "/root/repo/tests/core/test_rsi.cc" "tests/CMakeFiles/test_core.dir/core/test_rsi.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_rsi.cc.o.d"
  "/root/repo/tests/core/test_suspend.cc" "tests/CMakeFiles/test_core.dir/core/test_suspend.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_suspend.cc.o.d"
  "/root/repo/tests/core/test_teardown_stress.cc" "tests/CMakeFiles/test_core.dir/core/test_teardown_stress.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_teardown_stress.cc.o.d"
  "/root/repo/tests/core/test_terminate.cc" "tests/CMakeFiles/test_core.dir/core/test_terminate.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_terminate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/cg_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/cg_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/cg_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/cg_host.dir/DependInfo.cmake"
  "/root/repo/build/src/rmm/CMakeFiles/cg_rmm.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cg_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
