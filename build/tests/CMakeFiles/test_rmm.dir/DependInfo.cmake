
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rmm/test_granule.cc" "tests/CMakeFiles/test_rmm.dir/rmm/test_granule.cc.o" "gcc" "tests/CMakeFiles/test_rmm.dir/rmm/test_granule.cc.o.d"
  "/root/repo/tests/rmm/test_measurement.cc" "tests/CMakeFiles/test_rmm.dir/rmm/test_measurement.cc.o" "gcc" "tests/CMakeFiles/test_rmm.dir/rmm/test_measurement.cc.o.d"
  "/root/repo/tests/rmm/test_rmm.cc" "tests/CMakeFiles/test_rmm.dir/rmm/test_rmm.cc.o" "gcc" "tests/CMakeFiles/test_rmm.dir/rmm/test_rmm.cc.o.d"
  "/root/repo/tests/rmm/test_rtt.cc" "tests/CMakeFiles/test_rmm.dir/rmm/test_rtt.cc.o" "gcc" "tests/CMakeFiles/test_rmm.dir/rmm/test_rtt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rmm/CMakeFiles/cg_rmm.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cg_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
