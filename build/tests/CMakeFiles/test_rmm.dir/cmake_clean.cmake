file(REMOVE_RECURSE
  "CMakeFiles/test_rmm.dir/rmm/test_granule.cc.o"
  "CMakeFiles/test_rmm.dir/rmm/test_granule.cc.o.d"
  "CMakeFiles/test_rmm.dir/rmm/test_measurement.cc.o"
  "CMakeFiles/test_rmm.dir/rmm/test_measurement.cc.o.d"
  "CMakeFiles/test_rmm.dir/rmm/test_rmm.cc.o"
  "CMakeFiles/test_rmm.dir/rmm/test_rmm.cc.o.d"
  "CMakeFiles/test_rmm.dir/rmm/test_rtt.cc.o"
  "CMakeFiles/test_rmm.dir/rmm/test_rtt.cc.o.d"
  "test_rmm"
  "test_rmm.pdb"
  "test_rmm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
