# Empty dependencies file for test_rmm.
# This may be replaced when dependencies are built.
