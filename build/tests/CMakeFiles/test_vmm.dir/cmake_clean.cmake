file(REMOVE_RECURSE
  "CMakeFiles/test_vmm.dir/vmm/test_devices.cc.o"
  "CMakeFiles/test_vmm.dir/vmm/test_devices.cc.o.d"
  "CMakeFiles/test_vmm.dir/vmm/test_kvm.cc.o"
  "CMakeFiles/test_vmm.dir/vmm/test_kvm.cc.o.d"
  "CMakeFiles/test_vmm.dir/vmm/test_virtio_unit.cc.o"
  "CMakeFiles/test_vmm.dir/vmm/test_virtio_unit.cc.o.d"
  "test_vmm"
  "test_vmm.pdb"
  "test_vmm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
