
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hw/test_gic.cc" "tests/CMakeFiles/test_hw.dir/hw/test_gic.cc.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/test_gic.cc.o.d"
  "/root/repo/tests/hw/test_machine.cc" "tests/CMakeFiles/test_hw.dir/hw/test_machine.cc.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/test_machine.cc.o.d"
  "/root/repo/tests/hw/test_uarch.cc" "tests/CMakeFiles/test_hw.dir/hw/test_uarch.cc.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/test_uarch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/cg_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
