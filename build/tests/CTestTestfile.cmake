# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_host[1]_include.cmake")
include("/root/repo/build/tests/test_rmm[1]_include.cmake")
include("/root/repo/build/tests/test_guest[1]_include.cmake")
include("/root/repo/build/tests/test_vmm[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_attacks[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
