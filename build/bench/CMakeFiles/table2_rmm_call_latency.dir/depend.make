# Empty dependencies file for table2_rmm_call_latency.
# This may be replaced when dependencies are built.
