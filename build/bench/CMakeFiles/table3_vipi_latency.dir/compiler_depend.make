# Empty compiler generated dependencies file for table3_vipi_latency.
# This may be replaced when dependencies are built.
