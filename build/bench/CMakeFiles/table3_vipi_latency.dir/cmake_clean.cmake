file(REMOVE_RECURSE
  "CMakeFiles/table3_vipi_latency.dir/table3_vipi_latency.cc.o"
  "CMakeFiles/table3_vipi_latency.dir/table3_vipi_latency.cc.o.d"
  "table3_vipi_latency"
  "table3_vipi_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_vipi_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
