# Empty dependencies file for fig7_multi_vm.
# This may be replaced when dependencies are built.
