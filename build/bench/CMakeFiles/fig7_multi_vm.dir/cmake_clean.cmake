file(REMOVE_RECURSE
  "CMakeFiles/fig7_multi_vm.dir/fig7_multi_vm.cc.o"
  "CMakeFiles/fig7_multi_vm.dir/fig7_multi_vm.cc.o.d"
  "fig7_multi_vm"
  "fig7_multi_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_multi_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
