# Empty dependencies file for sec_leakage_matrix.
# This may be replaced when dependencies are built.
