file(REMOVE_RECURSE
  "CMakeFiles/sec_leakage_matrix.dir/sec_leakage_matrix.cc.o"
  "CMakeFiles/sec_leakage_matrix.dir/sec_leakage_matrix.cc.o.d"
  "sec_leakage_matrix"
  "sec_leakage_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec_leakage_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
