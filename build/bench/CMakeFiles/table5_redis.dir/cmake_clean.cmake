file(REMOVE_RECURSE
  "CMakeFiles/table5_redis.dir/table5_redis.cc.o"
  "CMakeFiles/table5_redis.dir/table5_redis.cc.o.d"
  "table5_redis"
  "table5_redis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_redis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
