# Empty dependencies file for table5_redis.
# This may be replaced when dependencies are built.
