# Empty compiler generated dependencies file for fig10_kernel_build.
# This may be replaced when dependencies are built.
