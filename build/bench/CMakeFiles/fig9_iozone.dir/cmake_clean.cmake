file(REMOVE_RECURSE
  "CMakeFiles/fig9_iozone.dir/fig9_iozone.cc.o"
  "CMakeFiles/fig9_iozone.dir/fig9_iozone.cc.o.d"
  "fig9_iozone"
  "fig9_iozone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_iozone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
