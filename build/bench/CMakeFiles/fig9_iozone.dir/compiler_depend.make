# Empty compiler generated dependencies file for fig9_iozone.
# This may be replaced when dependencies are built.
