# Empty compiler generated dependencies file for table4_exit_counts.
# This may be replaced when dependencies are built.
