file(REMOVE_RECURSE
  "CMakeFiles/fig8_netpipe.dir/fig8_netpipe.cc.o"
  "CMakeFiles/fig8_netpipe.dir/fig8_netpipe.cc.o.d"
  "fig8_netpipe"
  "fig8_netpipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_netpipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
