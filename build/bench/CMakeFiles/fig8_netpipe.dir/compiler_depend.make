# Empty compiler generated dependencies file for fig8_netpipe.
# This may be replaced when dependencies are built.
