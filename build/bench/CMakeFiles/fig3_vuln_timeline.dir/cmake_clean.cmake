file(REMOVE_RECURSE
  "CMakeFiles/fig3_vuln_timeline.dir/fig3_vuln_timeline.cc.o"
  "CMakeFiles/fig3_vuln_timeline.dir/fig3_vuln_timeline.cc.o.d"
  "fig3_vuln_timeline"
  "fig3_vuln_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_vuln_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
