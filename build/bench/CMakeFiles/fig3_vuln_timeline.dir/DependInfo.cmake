
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig3_vuln_timeline.cc" "bench/CMakeFiles/fig3_vuln_timeline.dir/fig3_vuln_timeline.cc.o" "gcc" "bench/CMakeFiles/fig3_vuln_timeline.dir/fig3_vuln_timeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/cg_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/cg_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/cg_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/cg_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/cg_host.dir/DependInfo.cmake"
  "/root/repo/build/src/rmm/CMakeFiles/cg_rmm.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cg_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
