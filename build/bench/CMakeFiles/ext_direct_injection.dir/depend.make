# Empty dependencies file for ext_direct_injection.
# This may be replaced when dependencies are built.
