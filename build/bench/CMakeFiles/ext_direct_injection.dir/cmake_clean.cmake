file(REMOVE_RECURSE
  "CMakeFiles/ext_direct_injection.dir/ext_direct_injection.cc.o"
  "CMakeFiles/ext_direct_injection.dir/ext_direct_injection.cc.o.d"
  "ext_direct_injection"
  "ext_direct_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_direct_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
