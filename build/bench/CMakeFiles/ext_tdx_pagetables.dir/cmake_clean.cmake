file(REMOVE_RECURSE
  "CMakeFiles/ext_tdx_pagetables.dir/ext_tdx_pagetables.cc.o"
  "CMakeFiles/ext_tdx_pagetables.dir/ext_tdx_pagetables.cc.o.d"
  "ext_tdx_pagetables"
  "ext_tdx_pagetables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_tdx_pagetables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
