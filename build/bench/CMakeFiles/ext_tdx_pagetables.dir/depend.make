# Empty dependencies file for ext_tdx_pagetables.
# This may be replaced when dependencies are built.
