file(REMOVE_RECURSE
  "CMakeFiles/fig6_coremark_scaling.dir/fig6_coremark_scaling.cc.o"
  "CMakeFiles/fig6_coremark_scaling.dir/fig6_coremark_scaling.cc.o.d"
  "fig6_coremark_scaling"
  "fig6_coremark_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_coremark_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
