# Empty compiler generated dependencies file for fig6_coremark_scaling.
# This may be replaced when dependencies are built.
