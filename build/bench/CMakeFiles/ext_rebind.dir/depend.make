# Empty dependencies file for ext_rebind.
# This may be replaced when dependencies are built.
