file(REMOVE_RECURSE
  "CMakeFiles/ext_rebind.dir/ext_rebind.cc.o"
  "CMakeFiles/ext_rebind.dir/ext_rebind.cc.o.d"
  "ext_rebind"
  "ext_rebind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_rebind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
