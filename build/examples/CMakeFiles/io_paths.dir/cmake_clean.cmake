file(REMOVE_RECURSE
  "CMakeFiles/io_paths.dir/io_paths.cpp.o"
  "CMakeFiles/io_paths.dir/io_paths.cpp.o.d"
  "io_paths"
  "io_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
