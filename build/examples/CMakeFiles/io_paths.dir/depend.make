# Empty dependencies file for io_paths.
# This may be replaced when dependencies are built.
