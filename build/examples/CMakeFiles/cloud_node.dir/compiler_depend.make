# Empty compiler generated dependencies file for cloud_node.
# This may be replaced when dependencies are built.
