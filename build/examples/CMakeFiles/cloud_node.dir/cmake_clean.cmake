file(REMOVE_RECURSE
  "CMakeFiles/cloud_node.dir/cloud_node.cpp.o"
  "CMakeFiles/cloud_node.dir/cloud_node.cpp.o.d"
  "cloud_node"
  "cloud_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
